//! E11 — the §2 related-work claim: rendezvous is necessary but not
//! sufficient. "Contention may exist when meeting happens, thus simple
//! meeting does not always imply successful exchange of identities. The
//! difficult part, and what CSEEK achieves, is to resolve contention when
//! meeting happens."
//!
//! We run CSEEK with channel-history recording and compare, per neighbor
//! pair, the first *meeting* slot (both tuned to the same physical channel
//! — the rendezvous success condition, role- and contention-agnostic) with
//! the first *hearing* slot (an identity actually delivered). The gap
//! between the two curves is precisely the contention cost that rendezvous
//! algorithms do not account for — and that COUNT exists to pay down.

use super::ExpConfig;
use crate::scenario::Scenario;
use crate::table::{fmt_f, Table};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, Network, NodeId};
use std::collections::BTreeMap;

/// Per-pair first-meeting and first-hearing statistics from one run.
struct PairTimes {
    meeting: Vec<f64>,
    hearing: Vec<f64>,
    unheard_pairs: usize,
}

fn measure_pair_times(net: &Network, seed: u64) -> PairTimes {
    let model = crn_core::params::ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&model);
    let mut eng = Engine::new(net, seed, |ctx| CSeek::new(ctx.id, sched, true));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    let histories: Vec<&Vec<crn_sim::LocalChannel>> =
        outputs.iter().map(|o| o.history.as_ref().expect("history recorded")).collect();
    let first_heard: Vec<BTreeMap<NodeId, u64>> =
        outputs.iter().map(|o| o.first_heard.iter().copied().collect()).collect();

    let mut meeting = Vec::new();
    let mut hearing = Vec::new();
    let mut unheard = 0usize;
    for (a, b) in net.graph().edges() {
        let u = NodeId(a);
        let v = NodeId(b);
        // First slot in which both endpoints were tuned to the same
        // physical channel (the rendezvous condition).
        let hu = histories[u.index()];
        let hv = histories[v.index()];
        let met = hu
            .iter()
            .zip(hv.iter())
            .position(|(&lu, &lv)| net.local_to_global(u, lu) == net.local_to_global(v, lv));
        if let Some(t) = met {
            meeting.push(t as f64);
        }
        // First slot in which either endpoint actually heard the other.
        let heard = match (first_heard[u.index()].get(&v), first_heard[v.index()].get(&u)) {
            (Some(&x), Some(&y)) => Some(x.min(y)),
            (Some(&x), None) | (None, Some(&x)) => Some(x),
            (None, None) => None,
        };
        match heard {
            Some(t) => hearing.push(t as f64),
            None => unheard += 1,
        }
    }
    PairTimes { meeting, hearing, unheard_pairs: unheard }
}

/// E11: first-meeting vs first-hearing times across star sizes.
pub fn e11_rendezvous_gap(cfg: &ExpConfig) -> Table {
    let deltas: &[usize] = if cfg.quick { &[4, 16] } else { &[4, 8, 16, 32, 64] };
    let mut t = Table::new(
        "E11 (§2): rendezvous (meeting) vs successful exchange (hearing) under CSEEK (identical-channel star, c = 4)",
        &["Δ", "mean first meeting", "mean first hearing", "hearing/meeting", "pairs never heard"],
    );
    for &delta in deltas {
        // Approximate stats: E11 reads pairwise meeting/hearing times and
        // the CSEEK schedule (n, c, Δ, k, kmax) — never the diameter — so
        // the 65-node full-mode stars skip the exact all-source BFS.
        let scn = Scenario::new(
            format!("e11-d{delta}"),
            Topology::Star { leaves: delta },
            // Identical channels: every slot both endpoints share all
            // channels, so meetings are frequent — but so is contention.
            ChannelModel::Identical { c: 4 },
            cfg.seed,
        )
        .with_stats(crn_sim::StatsMode::Approximate);
        let built = scn.build().expect("scenario builds");
        let mut meet_all = Vec::new();
        let mut hear_all = Vec::new();
        let mut unheard = 0usize;
        for trial in 0..cfg.trials() {
            let times = measure_pair_times(&built.net, cfg.seed ^ 0x11E ^ ((trial as u64) << 20));
            meet_all.extend(times.meeting);
            hear_all.extend(times.hearing);
            unheard += times.unheard_pairs;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let m = mean(&meet_all);
        let h = mean(&hear_all);
        t.push_row(vec![
            delta.to_string(),
            fmt_f(m),
            fmt_f(h),
            fmt_f(if m > 0.0 { h / m } else { f64::NAN }),
            unheard.to_string(),
        ]);
    }
    t.push_note(
        "Meeting (the rendezvous success condition) is consistently ~2–2.5x \
         faster than actually hearing an identity, *even though* CSEEK's COUNT \
         machinery is actively resolving the contention — a rendezvous \
         algorithm that stops at meeting leaves that entire gap unsolved, \
         which is the paper's case for COUNT + CSEEK over rendezvous-based \
         discovery (§2).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_hearing_lags_meeting() {
        let t = e11_rendezvous_gap(&ExpConfig { quick: true, trials: 2, seed: 77 });
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let meeting: f64 = row[1].parse().unwrap();
            let hearing: f64 = row[2].parse().unwrap();
            assert!(hearing >= meeting, "hearing cannot precede meeting: {row:?}");
            let gap: f64 = row[3].parse().unwrap();
            assert!(gap >= 1.3, "a substantial rendezvous-vs-exchange gap must exist: {row:?}");
        }
    }
}
