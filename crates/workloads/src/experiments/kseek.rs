//! E6 — Theorem 6: CKSEEK solves k̂-neighbor discovery strictly faster
//! than full CSEEK when `k̂ > k`, while still finding every good neighbor.
//!
//! Scenario: a ring partitioned into groups. Intra-group edges overlap on
//! `kmax` channels (good neighbors for `k̂ = kmax`); the few cross-group
//! edges overlap only on the global core `k`. CKSEEK may ignore the
//! cross-group edges and therefore runs a much shorter schedule.

use super::ExpConfig;
use crate::runner::{khat_discovery_trials, summarize_trials};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;

/// E6: CSEEK vs CKSEEK on the k̂-neighbor-discovery success condition.
pub fn e6_ckseek(cfg: &ExpConfig) -> Table {
    let n = if cfg.quick { 12 } else { 24 };
    let c = 8;
    let k = 1;
    let kmax = 6;
    let groups = if cfg.quick { 2 } else { 4 };
    let khats: &[usize] = if cfg.quick { &[6] } else { &[2, 3, 6] };
    let scn = Scenario::new(
        "e6",
        Topology::Cycle { n },
        ChannelModel::GroupOverlay { c, k, kmax, groups },
        cfg.seed,
    );
    let built = scn.build().expect("scenario builds");
    assert_eq!(built.model.k, k);
    assert_eq!(built.model.kmax, kmax);
    let params = SeekParams::default();
    let mut t = Table::new(
        format!(
            "E6 (Thm 6): CKSEEK vs CSEEK for k̂-neighbor discovery (ring n = {n}, c = {c}, k = {k}, kmax = {kmax})"
        ),
        &["algorithm", "k̂", "schedule slots", "mean slots to k̂-complete", "success"],
    );

    // Full CSEEK as the reference: solves every k̂ (it finds everyone).
    let full = params.schedule(&built.model);
    for &khat in khats {
        let trials = khat_discovery_trials(
            &built.net,
            |ctx| CSeek::new(ctx.id, full, false),
            khat,
            cfg.trials(),
            cfg.seed ^ 0xE6,
            full.total_slots(),
        );
        let (mean, frac) = summarize_trials(&trials);
        t.push_row(vec![
            "CSEEK".into(),
            khat.to_string(),
            full.total_slots().to_string(),
            fmt_opt(mean),
            fmt_f(frac),
        ]);
    }

    for &khat in khats {
        let delta_khat = built.net.delta_khat(khat);
        let sched = params.kseek_schedule(&built.model, khat, Some(delta_khat));
        let trials = khat_discovery_trials(
            &built.net,
            |ctx| CSeek::new(ctx.id, sched, false),
            khat,
            cfg.trials(),
            cfg.seed ^ 0xE6,
            sched.total_slots(),
        );
        let (mean, frac) = summarize_trials(&trials);
        t.push_row(vec![
            "CKSEEK".into(),
            khat.to_string(),
            sched.total_slots().to_string(),
            fmt_opt(mean),
            fmt_f(frac),
        ]);
    }
    t.push_note(
        "Paper prediction: CKSEEK's schedule shrinks by ≈ k̂/k in part one \
         while still finding all neighbors overlapping on ≥ k̂ channels.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_ckseek_schedule_is_shorter_and_succeeds() {
        let t = e6_ckseek(&ExpConfig { quick: true, trials: 2, seed: 4 });
        // Rows: CSEEK@6, CKSEEK@6.
        let cseek_slots: u64 = t.rows[0][2].parse().unwrap();
        let ckseek_slots: u64 = t.rows[1][2].parse().unwrap();
        assert!(
            ckseek_slots < cseek_slots,
            "CKSEEK schedule {ckseek_slots} should be shorter than CSEEK {cseek_slots}"
        );
        let frac: f64 = t.rows[1][4].parse().unwrap();
        assert!(frac >= 0.5, "CKSEEK should usually find all good neighbors");
    }
}
