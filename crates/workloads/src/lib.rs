//! # crn-workloads — scenarios, runners and the experiment suite
//!
//! Everything needed to *evaluate* the CRN primitives:
//!
//! * [`scenario`] — reproducible network scenarios (topology + channel
//!   model + seed);
//! * [`runner`] — multi-trial parallel runners with ground-truth probes
//!   (time to full discovery, time to all-informed);
//! * [`campaign`] — resumable, fault-tolerant campaigns on top of the
//!   runners: an `ArmResult` flow-control lifecycle (the runner owns
//!   retries, backoff, and per-arm circuit breakers), an append-only
//!   journal for exact checkpoint/resume, and deterministic fault
//!   injection for testing the harness itself;
//! * [`table`] — markdown/CSV result tables;
//! * [`theory`] — the paper's bounds as unit-constant reference curves;
//! * [`experiments`] — one module per paper claim (E1–E10, A1–A3; see
//!   DESIGN.md §5), shared by the `experiments` binary, the integration
//!   tests and the criterion benches.
//!
//! ## Example
//!
//! ```no_run
//! use crn_workloads::experiments::{run_experiment, ExpConfig};
//!
//! for table in run_experiment("e1", &ExpConfig::quick()) {
//!     println!("{}", table.markdown());
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod experiments;
pub mod runner;
pub mod scenario;
pub mod table;
pub mod theory;

pub use scenario::{Built, Scenario};
pub use table::Table;
