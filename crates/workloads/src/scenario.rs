//! Scenario = topology + channel model + seed, reproducibly materialized
//! into a [`Network`] with ground-truth [`ModelInfo`].

use crn_core::params::ModelInfo;
use crn_sim::channels::{prune_edges_by_overlap, shuffle_local_labels, ChannelModel};
use crn_sim::rng::stream_rng;
use crn_sim::topology::Topology;
use crn_sim::{Network, NetworkError, NodeId, StatsMode};

/// A reproducible network scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name (appears in tables).
    pub name: String,
    /// Radio-range topology.
    pub topology: Topology,
    /// Channel-assignment model.
    pub channels: ChannelModel,
    /// For emergent models: drop topology edges whose endpoints share fewer
    /// than this many channels (the paper's "neighbors = in range *and*
    /// sharing ≥ k channels"). `None` keeps all edges (constructive models
    /// guarantee the overlap themselves).
    pub prune_min_overlap: Option<usize>,
    /// Master seed for topology/channel randomness.
    pub seed: u64,
    /// How much work [`Scenario::build`] spends on structural statistics
    /// (default [`StatsMode::Exact`]). [`ModelInfo`] — and therefore every
    /// protocol schedule — depends only on `n`/`c`/`Δ`/`k`/`kmax`, which
    /// stay exact in both modes, so a builder whose experiment never reads
    /// `stats().diameter` can opt into [`StatsMode::Approximate`] at large
    /// `n` with bit-identical results and `O(n + m)` instead of `O(n·m)`
    /// setup. Builders that *do* consume the diameter (e.g. to size
    /// CGCAST's dissemination phases) must stay exact.
    pub stats: StatsMode,
}

impl Scenario {
    /// Creates a scenario with the given pieces.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        channels: ChannelModel,
        seed: u64,
    ) -> Self {
        Scenario {
            name: name.into(),
            topology,
            channels,
            prune_min_overlap: None,
            seed,
            stats: StatsMode::Exact,
        }
    }

    /// Enables overlap-based edge pruning (for [`ChannelModel::RandomPool`]).
    pub fn with_prune(mut self, min_overlap: usize) -> Self {
        self.prune_min_overlap = Some(min_overlap);
        self
    }

    /// Chooses the [`StatsMode`] for [`Scenario::build`] — see the
    /// eligibility note on [`Scenario::stats`].
    pub fn with_stats(mut self, stats: StatsMode) -> Self {
        self.stats = stats;
        self
    }

    /// Materializes the network and its globally-known model parameters.
    ///
    /// # Errors
    /// Returns [`NetworkError`] when the combination is inconsistent (e.g.
    /// an unpruned edge without shared channels).
    pub fn build(&self) -> Result<Built, NetworkError> {
        let n = self.topology.num_nodes();
        let mut topo_rng = stream_rng(self.seed, 0xE0);
        let mut chan_rng = stream_rng(self.seed, 0xC0);
        let mut label_rng = stream_rng(self.seed, 0x1A);
        let edges = self.topology.edges(&mut topo_rng);
        let mut sets = self.channels.assign(n, &mut chan_rng);
        let edges = match self.prune_min_overlap {
            Some(min) => prune_edges_by_overlap(&edges, &sets, min),
            None => edges,
        };
        shuffle_local_labels(&mut sets, &mut label_rng);
        let mut b = Network::builder(n);
        b.stats_mode(self.stats);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(edges.into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        let net = b.build()?;
        let model = ModelInfo::from_stats(&net.stats());
        Ok(Built { net, model })
    }
}

/// A materialized scenario.
#[derive(Debug, Clone)]
pub struct Built {
    /// The network instance.
    pub net: Network,
    /// Globally-known model parameters derived from ground truth.
    pub model: ModelInfo,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_constructive_scenario() {
        let s = Scenario::new(
            "cycle-core",
            Topology::Cycle { n: 8 },
            ChannelModel::SharedCore { c: 4, core: 2 },
            7,
        );
        let built = s.build().unwrap();
        assert_eq!(built.model.n, 8);
        assert_eq!(built.model.k, 2);
        assert_eq!(built.model.kmax, 2);
        assert!(built.net.stats().connected);
    }

    #[test]
    fn same_seed_same_network() {
        let s = Scenario::new(
            "geo",
            Topology::RandomGeometric { n: 20, radius: 0.5 },
            ChannelModel::RandomPool { c: 5, universe: 12 },
            9,
        )
        .with_prune(2);
        let a = s.build().unwrap();
        let b = s.build().unwrap();
        assert_eq!(a.net.stats(), b.net.stats());
        for v in 0..20u32 {
            assert_eq!(a.net.channel_map(NodeId(v)), b.net.channel_map(NodeId(v)));
        }
    }

    #[test]
    fn approximate_stats_build_same_network_same_model() {
        // The StatsMode knob must change only the diameter estimate: the
        // network itself and every ModelInfo field (all that schedules
        // consume) must be bit-identical — this is what makes switching
        // large diameter-insensitive experiment builders to Approximate a
        // pure setup-cost optimization.
        let scn = Scenario::new(
            "stats",
            Topology::RandomGeometric { n: 30, radius: 0.4 },
            ChannelModel::SharedCore { c: 4, core: 2 },
            13,
        );
        let exact = scn.clone().build().unwrap();
        let approx = scn.with_stats(StatsMode::Approximate).build().unwrap();
        assert_eq!(exact.model, approx.model, "ModelInfo has no diameter dependence");
        assert_eq!(exact.net.edges(), approx.net.edges());
        for v in 0..30u32 {
            assert_eq!(exact.net.channel_map(NodeId(v)), approx.net.channel_map(NodeId(v)));
        }
        assert!(exact.net.stats().diameter_is_exact);
        assert!(!approx.net.stats().diameter_is_exact);
    }

    #[test]
    fn pruning_enforces_min_overlap() {
        let s = Scenario::new(
            "pool",
            Topology::Complete { n: 12 },
            ChannelModel::RandomPool { c: 4, universe: 16 },
            11,
        )
        .with_prune(2);
        let built = s.build().unwrap();
        assert!(built.model.k >= 2 || built.net.stats().edges == 0);
    }
}
