//! Multi-trial experiment runners.
//!
//! A *trial* runs one protocol on one network with one RNG seed and records
//! the time-to-completion against ground truth (via an engine probe) plus
//! the engine counters. Trials are embarrassingly parallel and run on
//! `std::thread` scoped workers — and each worker owns **one long-lived
//! engine**, re-armed per trial through [`Engine::reset`] rather than
//! rebuilt per trial, so translation tables, flat action buckets, shard
//! scratch, and (for sharded execution modes) the persistent worker pool
//! all stay warm across the thousands of trials an experiment sweep runs.
//! A reset engine is observationally indistinguishable from a fresh one
//! (enforced by the engine's reuse regression test and by
//! `reused_engines_match_fresh_engines_per_trial` below), so reuse never
//! changes a single `Trial`.

use crn_core::baselines::NaiveBroadcast;
use crn_core::cgcast::CGCast;
use crn_core::discovery::{all_discovered, all_good_discovered, DiscoveryProtocol};
use crn_sim::{Counters, Engine, Network, NodeCtx, NodeId, Protocol, Resolver, SpectrumDynamics};

/// How each trial's engine executes: the slot resolution strategy, including
/// the number of phase-2 shard threads when parallel resolution is wanted.
///
/// Trials themselves are already run in parallel (one engine per worker), so
/// the default is a sequential engine — [`EngineExec::sharded`] is for the
/// opposite regime: few/huge runs where a *single* engine must use many
/// cores. A sharded trial engine owns a persistent worker pool
/// ([`crn_sim::pool::WorkerPool`]): the workers are spawned on the first
/// sharded slot of the trial, stay parked between slots, and are torn down
/// with the engine — so even many-slot trials pay thread setup once, not
/// per slot. Every execution mode is observationally identical (enforced by
/// the engine's differential tests), so this knob never changes results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineExec {
    /// The resolution strategy trials run with.
    pub resolver: Resolver,
}

impl Default for EngineExec {
    fn default() -> Self {
        EngineExec::sequential()
    }
}

impl EngineExec {
    /// Sequential engine with the adaptive per-channel resolver.
    pub fn sequential() -> EngineExec {
        EngineExec { resolver: Resolver::Auto }
    }

    /// Channel-sharded engine: phase-2 resolution on the trial thread plus
    /// `threads − 1` persistent pool workers.
    pub fn sharded(threads: usize) -> EngineExec {
        EngineExec { resolver: Resolver::sharded(threads) }
    }

    /// [`EngineExec::sharded`] at the machine's available parallelism —
    /// the right call for a single huge run on an otherwise idle host.
    /// Safe to use anywhere: results never depend on the thread count.
    pub fn sharded_auto() -> EngineExec {
        EngineExec::sharded(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    }
}

/// Full execution options for the stateful trial runners: the engine
/// execution mode plus an optional primary-user spectrum process installed
/// in every trial engine. Spectrum draws are keyed by `(trial seed, slot,
/// channel)`, so — like the resolver knob — engine reuse, worker count, and
/// claim order never change a single [`Trial`].
#[derive(Debug, Clone, Default)]
pub struct TrialOpts {
    /// The resolution strategy trial engines run with.
    pub exec: EngineExec,
    /// Primary-user dynamics installed per engine (`None` ≡
    /// [`SpectrumDynamics::Static`], i.e. a clean spectrum). Installed
    /// with per-slot history recording off: the runners read only
    /// [`Counters`] aggregates, so the busy log would be pure allocation
    /// overhead across a sweep's thousands of trial slots.
    pub spectrum: Option<SpectrumDynamics>,
}

impl TrialOpts {
    /// Options with `dynamics` installed (and the default sequential
    /// engine — trials themselves already run in parallel).
    pub fn with_spectrum(dynamics: SpectrumDynamics) -> TrialOpts {
        TrialOpts { exec: EngineExec::default(), spectrum: Some(dynamics) }
    }
}

/// Result of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// The trial's engine seed.
    pub seed: u64,
    /// First probed slot at which the ground-truth success condition held.
    pub completed_at: Option<u64>,
    /// Slots the run executed (the protocol's full schedule unless the
    /// probe fired earlier).
    pub slots_run: u64,
    /// Engine counters at the end of the run.
    pub counters: Counters,
}

impl Trial {
    /// `true` if the success condition was ever reached.
    pub fn succeeded(&self) -> bool {
        self.completed_at.is_some()
    }
}

/// How often (in slots) probes evaluate ground truth. Coarse enough to be
/// cheap, fine enough for timing resolution.
pub const PROBE_EVERY: u64 = 8;

/// Stateless [`run_parallel_stateful`] with an explicit worker count —
/// kept for the thread-count-independence regression test.
#[cfg(test)]
pub(crate) fn run_parallel_with_threads<T: Send>(
    threads: usize,
    trials: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    run_parallel_stateful(threads, trials, || (), |(), i| f(i))
}

/// The work-stealing core with **per-worker state**: `trials` closure
/// invocations distributed over scoped workers by an atomic claim counter
/// (each worker repeatedly claims the next unclaimed index, so a straggler
/// trial cannot leave the other workers idle the way fixed stripes can),
/// where each spawned worker calls `init()` once (on its own thread) and
/// threads the resulting state through every trial it claims. The state is
/// what lets the trial runners keep one long-lived [`Engine`] per worker —
/// `init` returns a lazily-filled engine slot, and `f` re-arms it with
/// [`Engine::reset`] per trial.
///
/// Results remain a pure function of the trial index: state is only a
/// cache of observationally-invisible structure (a reset engine ≡ a fresh
/// engine), so claim order, worker count, and which worker runs which
/// trial never affect the output (see
/// `trial_results_are_independent_of_thread_count` and
/// `reused_engines_match_fresh_engines_per_trial`).
pub(crate) fn run_parallel_stateful<T: Send, S>(
    threads: usize,
    trials: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.clamp(1, trials.max(1));
    let (init, f) = (&init, &f);
    let next = AtomicUsize::new(0);
    let next = &next;
    let mut results: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("trial thread panicked")).collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// One worker's lazily-created, reusable trial engine: the
/// create-or-[`Engine::reset`] idiom the stateful runners use, packaged so
/// campaign arms (which schedule one trial per unit rather than a whole
/// sweep per call) get the same engine reuse. Hold one cell per (worker,
/// network) pair — a cell's engine is bound to the network of its first
/// trial.
pub struct EngineCell<'net, P: Protocol> {
    eng: Option<Engine<'net, P>>,
}

impl<'net, P: Protocol> Default for EngineCell<'net, P> {
    fn default() -> Self {
        EngineCell::new()
    }
}

impl<'net, P: Protocol> EngineCell<'net, P> {
    /// An empty cell; the engine is built on the first trial.
    pub fn new() -> Self {
        EngineCell { eng: None }
    }

    /// Runs one trial at `seed` on `net`, reusing the cell's engine when
    /// present (re-armed via [`Engine::reset`] — observationally identical
    /// to a fresh engine) and installing `opts`' spectrum dynamics. The
    /// probe is evaluated every [`PROBE_EVERY`] slots; pass
    /// `|_, _| false` to run the full schedule.
    ///
    /// # Panics
    /// Panics if called with a different `net` than the cell's first trial
    /// (an engine is bound to its network).
    pub fn run_trial(
        &mut self,
        net: &'net Network,
        make: impl FnMut(NodeCtx) -> P,
        seed: u64,
        max_slots: u64,
        opts: &TrialOpts,
        mut probe: impl FnMut(u64, &Engine<'net, P>) -> bool,
    ) -> Trial
    where
        P: Send,
        P::Message: Send + Sync,
    {
        let eng = match &mut self.eng {
            Some(eng) => {
                assert!(
                    std::ptr::eq(eng.network(), net),
                    "EngineCell reused across different networks"
                );
                eng.reset(seed, make);
                eng
            }
            None => self.eng.insert(Engine::with_resolver(net, seed, opts.exec.resolver, make)),
        };
        // (Re-)install the spectrum process every trial: campaign arms may
        // run sweep points with different dynamics through one cell, and
        // `None` must uninstall a predecessor's process. Draws are keyed
        // by (seed, slot, channel), so installation order can never change
        // results.
        eng.set_spectrum(opts.spectrum.clone().unwrap_or(SpectrumDynamics::Static));
        if let Some(sp) = eng.spectrum_mut() {
            sp.set_record_history(false);
        }
        let mut probe_dyn = |s: u64, e: &Engine<'net, P>| probe(s, e);
        let outcome = eng.run(max_slots, Some((PROBE_EVERY, &mut probe_dyn)));
        Trial {
            seed: eng.seed(),
            completed_at: outcome.completed_at,
            slots_run: outcome.slots_run,
            counters: eng.counters(),
        }
    }
}

/// The fully-general stateful trial driver: `trials` runs of the protocol
/// built by `make` on `net`, each seeded by `seed_of(trial index)`, capped
/// at `max_slots`, probed every [`PROBE_EVERY`] slots with `probe`, and
/// executed under `opts` (engine mode + optional spectrum dynamics). Each
/// worker lazily constructs **one** engine on its first claimed trial and
/// re-arms it with [`Engine::reset`] for every later one — engine setup
/// (translation table, buckets, shard scratch, pool threads under
/// [`EngineExec::sharded`]) is paid once per worker, not once per trial.
///
/// Results are a pure function of the trial index — worker count, claim
/// order, and engine reuse never change a [`Trial`].
pub fn stateful_trials<P, F, Pr>(
    net: &Network,
    make: F,
    trials: usize,
    seed_of: impl Fn(usize) -> u64 + Sync,
    max_slots: u64,
    opts: &TrialOpts,
    probe: Pr,
) -> Vec<Trial>
where
    P: Protocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
    Pr: Fn(u64, &Engine<'_, P>) -> bool + Sync,
{
    run_parallel_stateful(
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(trials.max(1)),
        trials,
        EngineCell::new,
        |cell, i| cell.run_trial(net, &make, seed_of(i), max_slots, opts, |s, e| probe(s, e)),
    )
}

/// The shared trial driver for consecutive seeds `base_seed + i` on a
/// clean spectrum — see [`stateful_trials`].
fn engine_trials<P, F, Pr>(
    net: &Network,
    make: F,
    trials: usize,
    base_seed: u64,
    max_slots: u64,
    exec: EngineExec,
    probe: Pr,
) -> Vec<Trial>
where
    P: Protocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
    Pr: Fn(u64, &Engine<'_, P>) -> bool + Sync,
{
    let opts = TrialOpts { exec, spectrum: None };
    stateful_trials(
        net,
        make,
        trials,
        |i| base_seed.wrapping_add(i as u64),
        max_slots,
        &opts,
        probe,
    )
}

/// Runs `trials` discovery trials of protocol `make` on `net`, probing for
/// full neighbor-discovery completion. `max_slots` caps each run (pass the
/// schedule length).
pub fn discovery_trials<P, F>(
    net: &Network,
    make: F,
    trials: usize,
    base_seed: u64,
    max_slots: u64,
) -> Vec<Trial>
where
    P: DiscoveryProtocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
{
    discovery_trials_exec(net, make, trials, base_seed, max_slots, EngineExec::default())
}

/// [`discovery_trials`] with an explicit engine execution mode (the
/// engine-threads knob: pass [`EngineExec::sharded`] to resolve each slot's
/// channels across a thread pool inside every trial).
pub fn discovery_trials_exec<P, F>(
    net: &Network,
    make: F,
    trials: usize,
    base_seed: u64,
    max_slots: u64,
    exec: EngineExec,
) -> Vec<Trial>
where
    P: DiscoveryProtocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
{
    engine_trials(net, make, trials, base_seed, max_slots, exec, |_s, e| all_discovered(net, e))
}

/// Like [`discovery_trials`] but probing the k̂-neighbor-discovery success
/// condition (all `khat`-good neighbors found).
pub fn khat_discovery_trials<P, F>(
    net: &Network,
    make: F,
    khat: usize,
    trials: usize,
    base_seed: u64,
    max_slots: u64,
) -> Vec<Trial>
where
    P: DiscoveryProtocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
{
    khat_discovery_trials_exec(net, make, khat, trials, base_seed, max_slots, EngineExec::default())
}

/// [`khat_discovery_trials`] with an explicit engine execution mode
/// (identity-tested against the default path: the knob never changes
/// results).
#[allow(clippy::too_many_arguments)]
pub fn khat_discovery_trials_exec<P, F>(
    net: &Network,
    make: F,
    khat: usize,
    trials: usize,
    base_seed: u64,
    max_slots: u64,
    exec: EngineExec,
) -> Vec<Trial>
where
    P: DiscoveryProtocol + Send,
    P::Message: Send + Sync,
    F: Fn(NodeCtx) -> P + Sync,
{
    engine_trials(net, make, trials, base_seed, max_slots, exec, |_s, e| {
        all_good_discovered(net, e, khat)
    })
}

/// Runs CGCAST broadcast trials (source = node 0), probing for all nodes
/// informed. Returns per-trial results.
pub fn cgcast_trials(
    net: &Network,
    sched: crn_core::params::GcastSchedule,
    trials: usize,
    base_seed: u64,
) -> Vec<Trial> {
    cgcast_trials_exec(net, sched, trials, base_seed, EngineExec::default())
}

/// [`cgcast_trials`] with an explicit engine execution mode.
pub fn cgcast_trials_exec(
    net: &Network,
    sched: crn_core::params::GcastSchedule,
    trials: usize,
    base_seed: u64,
    exec: EngineExec,
) -> Vec<Trial> {
    let make = |ctx: NodeCtx| CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xBEEF));
    engine_trials(net, make, trials, base_seed, sched.total_slots(), exec, |_s, e| {
        let mut all = true;
        e.for_each_protocol(|_, p: &CGCast| all &= p.is_informed());
        all
    })
}

/// Runs naive-broadcast trials (source = node 0), probing for all informed.
pub fn naive_broadcast_trials(
    net: &Network,
    c: u16,
    max_slots: u64,
    trials: usize,
    base_seed: u64,
) -> Vec<Trial> {
    naive_broadcast_trials_exec(net, c, max_slots, trials, base_seed, EngineExec::default())
}

/// [`naive_broadcast_trials`] with an explicit engine execution mode
/// (identity-tested against the default path).
pub fn naive_broadcast_trials_exec(
    net: &Network,
    c: u16,
    max_slots: u64,
    trials: usize,
    base_seed: u64,
    exec: EngineExec,
) -> Vec<Trial> {
    let make = |ctx: NodeCtx| {
        NaiveBroadcast::new(ctx.id, c, max_slots, (ctx.id == NodeId(0)).then_some(0xBEEF))
    };
    engine_trials(net, make, trials, base_seed, max_slots, exec, |_s, e| {
        let mut all = true;
        e.for_each_protocol(|_, p: &NaiveBroadcast| all &= p.is_informed());
        all
    })
}

/// Mean completion time of successful trials, and the success fraction.
pub fn summarize_trials(trials: &[Trial]) -> (Option<f64>, f64) {
    let times: Vec<f64> = trials.iter().filter_map(|t| t.completed_at).map(|t| t as f64).collect();
    let frac = times.len() as f64 / trials.len().max(1) as f64;
    let mean =
        if times.is_empty() { None } else { Some(times.iter().sum::<f64>() / times.len() as f64) };
    (mean, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crn_core::params::SeekParams;
    use crn_core::seek::CSeek;
    use crn_sim::channels::ChannelModel;
    use crn_sim::topology::Topology;

    #[test]
    fn discovery_trials_complete_and_are_deterministic() {
        let built = Scenario::new(
            "t",
            Topology::Path { n: 4 },
            ChannelModel::SharedCore { c: 3, core: 2 },
            1,
        )
        .build()
        .unwrap();
        let sched = SeekParams::default().schedule(&built.model);
        let run = || {
            discovery_trials(
                &built.net,
                |ctx| CSeek::new(ctx.id, sched, false),
                4,
                77,
                sched.total_slots(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds, same results — even across thread pools");
        assert!(a.iter().all(Trial::succeeded));
        let (mean, frac) = summarize_trials(&a);
        assert_eq!(frac, 1.0);
        assert!(mean.unwrap() > 0.0);
    }

    #[test]
    fn trial_results_are_independent_of_thread_count() {
        // The work-stealing claim order varies with the worker count and
        // scheduling, but trial outputs are a pure function of the trial
        // index — so any thread count must produce byte-identical results.
        let built = Scenario::new(
            "threads",
            Topology::Cycle { n: 6 },
            ChannelModel::SharedCore { c: 3, core: 2 },
            9,
        )
        .build()
        .unwrap();
        let sched = SeekParams::default().schedule(&built.model);
        let run = |threads: usize| {
            run_parallel_with_threads(threads, 7, |i| {
                let seed = 1000u64.wrapping_add(i as u64);
                let mut eng =
                    Engine::new(&built.net, seed, |ctx: NodeCtx| CSeek::new(ctx.id, sched, false));
                let outcome = eng.run(sched.total_slots(), None);
                (outcome.slots_run, eng.counters())
            })
        };
        let single = run(1);
        for threads in [2, 3, 8, 32] {
            assert_eq!(run(threads), single, "{threads} threads diverge from 1");
        }
    }

    #[test]
    fn sharded_engine_exec_matches_sequential_trials() {
        // The engine-threads knob changes only how phase-2 work is
        // scheduled; every trial statistic must be byte-identical.
        let built = Scenario::new(
            "exec",
            Topology::RandomGeometric { n: 24, radius: 0.45 },
            ChannelModel::SharedCore { c: 3, core: 2 },
            4,
        )
        .build()
        .unwrap();
        let sched = SeekParams::default().schedule(&built.model);
        let run = |exec: EngineExec| {
            discovery_trials_exec(
                &built.net,
                |ctx| CSeek::new(ctx.id, sched, false),
                4,
                55,
                sched.total_slots(),
                exec,
            )
        };
        let sequential = run(EngineExec::sequential());
        for threads in [2usize, 4] {
            assert_eq!(
                run(EngineExec::sharded(threads)),
                sequential,
                "sharded engine ({threads} threads) diverges from sequential"
            );
        }
    }

    /// Reference implementation: one *fresh* engine per trial, no reuse —
    /// the ground truth the engine-reuse runners must reproduce exactly.
    fn fresh_engine_trials<P, F, Pr>(
        net: &crn_sim::Network,
        make: F,
        trials: usize,
        base_seed: u64,
        max_slots: u64,
        exec: EngineExec,
        probe: Pr,
    ) -> Vec<Trial>
    where
        P: crn_sim::Protocol + Send,
        P::Message: Send + Sync,
        F: Fn(NodeCtx) -> P + Sync,
        Pr: Fn(u64, &Engine<'_, P>) -> bool + Sync,
    {
        run_parallel_with_threads(4, trials, |i| {
            let seed = base_seed.wrapping_add(i as u64);
            let mut eng = Engine::with_resolver(net, seed, exec.resolver, &make);
            let mut probe = |s: u64, e: &Engine<'_, P>| probe(s, e);
            let outcome = eng.run(max_slots, Some((PROBE_EVERY, &mut probe)));
            Trial {
                seed,
                completed_at: outcome.completed_at,
                slots_run: outcome.slots_run,
                counters: eng.counters(),
            }
        })
    }

    #[test]
    fn reused_engines_match_fresh_engines_per_trial() {
        // The runners keep one engine per worker and re-arm it with
        // `Engine::reset`; every `Trial` must be byte-identical to what a
        // fresh engine per trial produces — for sequential *and* sharded
        // execution (where the persistent pool survives across trials).
        let built = Scenario::new(
            "reuse",
            Topology::RandomGeometric { n: 20, radius: 0.5 },
            ChannelModel::SharedCore { c: 3, core: 2 },
            11,
        )
        .build()
        .unwrap();
        let sched = SeekParams::default().schedule(&built.model);
        let make = |ctx: NodeCtx| CSeek::new(ctx.id, sched, false);
        for exec in [EngineExec::sequential(), EngineExec::sharded(2)] {
            let fresh = fresh_engine_trials(
                &built.net,
                make,
                9,
                321,
                sched.total_slots(),
                exec,
                |_s, e| all_discovered(&built.net, e),
            );
            let reused = discovery_trials_exec(&built.net, make, 9, 321, sched.total_slots(), exec);
            assert_eq!(reused, fresh, "engine reuse changed trial results ({exec:?})");
        }
    }

    #[test]
    fn khat_exec_variant_matches_default_path() {
        let built = Scenario::new(
            "khat-exec",
            Topology::Grid { rows: 3, cols: 3 },
            ChannelModel::GroupOverlay { c: 5, k: 2, kmax: 3, groups: 2 },
            7,
        )
        .build()
        .unwrap();
        let sched = SeekParams::default().schedule(&built.model);
        let make = |ctx: NodeCtx| CSeek::new(ctx.id, sched, false);
        let khat = 2;
        let default = khat_discovery_trials(&built.net, make, khat, 5, 99, sched.total_slots());
        for exec in [EngineExec::sequential(), EngineExec::sharded(2)] {
            let via_exec = khat_discovery_trials_exec(
                &built.net,
                make,
                khat,
                5,
                99,
                sched.total_slots(),
                exec,
            );
            assert_eq!(via_exec, default, "khat exec knob changed results ({exec:?})");
        }
    }

    #[test]
    fn naive_broadcast_exec_variant_matches_default_path() {
        let built = Scenario::new(
            "naive-exec",
            Topology::Path { n: 6 },
            ChannelModel::SharedCore { c: 3, core: 2 },
            3,
        )
        .build()
        .unwrap();
        let c = built.net.channels_per_node() as u16;
        let default = naive_broadcast_trials(&built.net, c, 256, 5, 17);
        assert!(default.iter().any(Trial::succeeded), "scenario must exercise deliveries");
        for exec in [EngineExec::sequential(), EngineExec::sharded(2)] {
            let via_exec = naive_broadcast_trials_exec(&built.net, c, 256, 5, 17, exec);
            assert_eq!(via_exec, default, "naive-broadcast exec knob changed results ({exec:?})");
        }
    }

    #[test]
    fn summarize_handles_failures() {
        let t = Trial { seed: 0, completed_at: None, slots_run: 10, counters: Counters::default() };
        let (mean, frac) = summarize_trials(&[t]);
        assert_eq!(mean, None);
        assert_eq!(frac, 0.0);
    }
}
