//! Unit-constant reference curves from the paper's bounds, used to
//! normalize measured times ("measured / predicted" columns should be
//! roughly flat across a sweep when the shape holds).

use crn_core::params::ModelInfo;

/// Theorem 4 shape: `c²/k + (kmax/k)·Δ` (poly-log factors dropped).
pub fn cseek_shape(m: &ModelInfo) -> f64 {
    let c = m.c as f64;
    c * c / m.k as f64 + (m.kmax as f64 / m.k as f64) * m.delta as f64
}

/// The §1 naive-discovery shape: `(c²/k)·Δ`.
pub fn naive_discovery_shape(m: &ModelInfo) -> f64 {
    let c = m.c as f64;
    c * c / m.k as f64 * m.delta as f64
}

/// The Zeng-et-al. class shape from §2: `c²/k + c·Δ/k`.
pub fn fixed_rate_shape(m: &ModelInfo) -> f64 {
    let c = m.c as f64;
    (c * c + c * m.delta as f64) / m.k as f64
}

/// Theorem 6 shape: `c²/k̂ + (kmax/k̂)·Δ_k̂ + Δ`.
pub fn ckseek_shape(m: &ModelInfo, khat: usize, delta_khat: usize) -> f64 {
    let c = m.c as f64;
    c * c / khat as f64 + (m.kmax as f64 / khat as f64) * delta_khat as f64 + m.delta as f64
}

/// Theorem 9 shape: `c²/k + (kmax/k)·Δ + D·Δ`.
pub fn cgcast_shape(m: &ModelInfo, diameter: u64) -> f64 {
    cseek_shape(m) + diameter as f64 * m.delta as f64
}

/// The §1 naive-broadcast shape: `(c²/k)·D`.
pub fn naive_broadcast_shape(m: &ModelInfo, diameter: u64) -> f64 {
    let c = m.c as f64;
    c * c / m.k as f64 * diameter as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(c: usize, k: usize, kmax: usize, delta: usize) -> ModelInfo {
        ModelInfo { n: 64, c, delta, k, kmax }
    }

    #[test]
    fn cseek_beats_naive_for_large_delta() {
        let model = m(8, 2, 2, 64);
        assert!(cseek_shape(&model) < naive_discovery_shape(&model));
    }

    #[test]
    fn cseek_beats_fixed_rate_when_kmax_small() {
        // kmax = k << c: CSEEK pays (kmax/k)·Δ = Δ, fixed-rate pays cΔ/k.
        let model = m(16, 2, 2, 64);
        assert!(cseek_shape(&model) < fixed_rate_shape(&model));
    }

    #[test]
    fn shapes_scale_as_documented() {
        let base = m(8, 2, 2, 4);
        let double_c = m(16, 2, 2, 4);
        let r = cseek_shape(&double_c) / cseek_shape(&base);
        assert!(r > 3.5 && r < 4.1, "c² scaling, got {r}");
        let double_delta = m(8, 2, 2, 8);
        assert!(naive_discovery_shape(&double_delta) == 2.0 * naive_discovery_shape(&base));
    }

    #[test]
    fn gcast_shape_adds_diameter_term() {
        let model = m(8, 2, 2, 4);
        assert!(cgcast_shape(&model, 10) > cgcast_shape(&model, 1));
        assert_eq!(cgcast_shape(&model, 10) - cgcast_shape(&model, 0), 10.0 * 4.0);
    }
}
