//! Plain-text result tables (markdown and CSV) — how every experiment
//! reports its rows, mirroring the role of tables/figures in a paper.

use std::fmt::Write as _;

/// A titled result table with free-form footnotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. "E2: CSEEK completion time vs c").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row must match `columns` in length.
    pub rows: Vec<Vec<String>>,
    /// Footnotes rendered below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != header width {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders GitHub-flavored markdown with aligned columns.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", render_row(&self.columns, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", dashes.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }

    /// Renders CSV (header row first; quotes cells containing commas).
    pub fn csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats an optional mean (e.g. completion time) with a failure marker.
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_f(x),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("Demo", &["x", "longer"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "2".into()]);
        t.push_note("a note");
        let md = t.markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| x   | longer |"));
        assert!(md.contains("| 100 | 2      |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "z\"q".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"z\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(3.17259), "3.17");
        assert_eq!(fmt_f(42.42), "42.4");
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_opt(None), "—");
        assert_eq!(fmt_opt(Some(2.0)), "2.00");
    }
}
