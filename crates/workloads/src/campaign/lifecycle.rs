//! The campaign flow-control vocabulary: what an arm may report, and the
//! retry policy the runner applies when it reports failure.

/// Flow-control instruction from an experiment arm to the campaign runner.
///
/// The arm says **what happened**; the runner decides **how to continue**
/// (record, re-enqueue, back off and retry, or trip the arm's breaker).
/// An arm must never sleep, loop on its own retries, or consult a clock —
/// that is exactly the policy the runner owns.
#[derive(Debug, Clone, PartialEq)]
pub enum ArmResult<T> {
    /// The unit finished; `output` is its result. The runner records it in
    /// the journal and never schedules this `(arm, trial)` again.
    Done {
        /// The unit's result (a completed trial).
        output: T,
    },
    /// The unit has more work than fits one invocation: re-enqueue it on
    /// the next scheduling tick, handing `resume_key` back via
    /// [`Unit::resume`]. `progress` ∈ [0, 1] is observability only.
    ///
    /// `Continue` state is **not** journaled: a crash mid-`Continue`
    /// restarts that trial from scratch on resume, which is safe because
    /// unit outputs are a pure function of `(arm, trial)`.
    Continue {
        /// Fraction of the unit's work done so far (0.0..=1.0).
        progress: f64,
        /// Opaque arm-defined state handed back on the next invocation.
        resume_key: u64,
    },
    /// The unit does not apply (e.g. a sweep point outside a model's valid
    /// range). Recorded as skipped with the reason; never retried.
    Skip {
        /// Why the unit was skipped.
        reason: String,
    },
    /// The unit failed in a way that might succeed on retry. The runner
    /// charges the unit's retry budget, backs off exponentially (in
    /// scheduling ticks), and feeds the arm's circuit breaker.
    Retryable {
        /// Human-readable failure description (journaled).
        error: String,
    },
}

/// One schedulable unit of campaign work: trial `trial` of arm `arm`, on
/// its `attempt`-th attempt (0-based), optionally resuming from a
/// [`ArmResult::Continue`] key returned by the previous invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Index into [`CampaignSpec::arms`].
    pub arm: usize,
    /// Trial index within the arm (`0..arm.trials`).
    pub trial: usize,
    /// 0-based attempt counter (incremented per [`ArmResult::Retryable`]).
    pub attempt: u32,
    /// The `resume_key` of the unit's last [`ArmResult::Continue`], if the
    /// previous invocation asked to be continued.
    pub resume: Option<u64>,
}

/// How the runner reacts to [`ArmResult::Retryable`]: per-unit attempt
/// budget and exponential backoff measured in scheduling ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per unit (first try included). A unit whose
    /// `max_attempts`-th attempt fails is abandoned as
    /// [`AbandonReason::Exhausted`].
    pub max_attempts: u32,
    /// Backoff after the first failure, in scheduling ticks.
    pub backoff_base: u64,
    /// Backoff ceiling: delays double per failed attempt but never exceed
    /// this.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff_base: 1, backoff_cap: 8 }
    }
}

impl RetryPolicy {
    /// The backoff delay (in scheduling ticks) after a unit's `attempt`-th
    /// attempt (0-based) failed: `base · 2^attempt`, capped. Deterministic —
    /// no jitter, no wall clock — so a resumed campaign reschedules
    /// retries exactly as an uninterrupted one does.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let shift = attempt.min(62);
        self.backoff_base.saturating_mul(1u64 << shift).min(self.backoff_cap)
    }
}

/// Why a unit was given up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbandonReason {
    /// Its retry budget ([`RetryPolicy::max_attempts`]) ran out.
    Exhausted,
    /// Its arm's circuit breaker tripped permanently.
    Tripped,
}

impl AbandonReason {
    /// Stable journal token for the reason.
    pub(crate) fn token(self) -> &'static str {
        match self {
            AbandonReason::Exhausted => "exhausted",
            AbandonReason::Tripped => "tripped",
        }
    }

    /// Parses a journal token written by [`AbandonReason::token`].
    pub(crate) fn from_token(s: &str) -> Option<AbandonReason> {
        match s {
            "exhausted" => Some(AbandonReason::Exhausted),
            "tripped" => Some(AbandonReason::Tripped),
            _ => None,
        }
    }
}

/// One arm of a campaign: a named sweep point with a trial count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmSpec {
    /// Stable arm name (journaled; shown in reports).
    pub name: String,
    /// Number of trials this arm runs.
    pub trials: usize,
}

impl ArmSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, trials: usize) -> ArmSpec {
        ArmSpec { name: name.into(), trials }
    }
}

/// The full campaign configuration. Everything here is covered by the
/// journal's config hash — resuming with a changed spec is refused —
/// *except* the executor thread count, which is deliberately free to
/// change between runs because results never depend on it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (journaled).
    pub name: String,
    /// The arms (sweep points), in scheduling order.
    pub arms: Vec<ArmSpec>,
    /// Master seed; arms derive per-trial engine seeds from it.
    pub seed: u64,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds, applied per arm.
    pub breaker: super::BreakerConfig,
}

impl CampaignSpec {
    /// A spec with default retry/breaker policies.
    pub fn new(name: impl Into<String>, arms: Vec<ArmSpec>, seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            arms,
            seed,
            retry: RetryPolicy::default(),
            breaker: super::BreakerConfig::default(),
        }
    }

    /// Total units across all arms.
    pub fn total_trials(&self) -> usize {
        self.arms.iter().map(|a| a.trials).sum()
    }
}

/// Deterministic fault injection for exercising the campaign runner
/// itself: the crash half of the kill/resume differential tests and the
/// failure half of the breaker tests. Intended for tests, the CI smoke
/// step, and the `resumable_sweep` example; production campaigns pass
/// [`FaultPlan::none`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abort the campaign (journal intact and fsynced — the moral
    /// equivalent of SIGKILL at a trial boundary) once this many units
    /// have been recorded as finished (done/skipped/abandoned), counting
    /// units restored from the journal on resume.
    pub kill_after_trials: Option<usize>,
    /// Replace chosen units' results with [`ArmResult::Retryable`]
    /// *before* the arm runs (the unit's work is not wasted on a result
    /// the plan will discard).
    pub inject_retryable: Vec<InjectRetryable>,
}

/// One injection rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectRetryable {
    /// Arm index the rule applies to.
    pub arm: usize,
    /// Trial the rule applies to; `None` = every trial of the arm.
    pub trial: Option<usize>,
    /// Fail attempts numbered `< attempts_below` (so `u32::MAX` makes the
    /// unit fail persistently and `1` makes only the first attempt fail).
    pub attempts_below: u32,
}

impl FaultPlan {
    /// No faults: the production plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that kills the campaign after `n` recorded units.
    pub fn kill_after(n: usize) -> FaultPlan {
        FaultPlan { kill_after_trials: Some(n), ..FaultPlan::default() }
    }

    /// Whether this plan injects a failure for `unit`.
    pub(crate) fn injects(&self, unit: &Unit) -> bool {
        self.inject_retryable.iter().any(|r| {
            r.arm == unit.arm
                && r.trial.is_none_or(|t| t == unit.trial)
                && unit.attempt < r.attempts_below
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 10, backoff_base: 2, backoff_cap: 12 };
        assert_eq!(p.backoff_ticks(0), 2);
        assert_eq!(p.backoff_ticks(1), 4);
        assert_eq!(p.backoff_ticks(2), 8);
        assert_eq!(p.backoff_ticks(3), 12, "capped");
        assert_eq!(p.backoff_ticks(62), 12, "huge attempts saturate, no overflow");
    }

    #[test]
    fn fault_plan_matches_arm_trial_attempt() {
        let plan = FaultPlan {
            kill_after_trials: None,
            inject_retryable: vec![InjectRetryable { arm: 1, trial: Some(2), attempts_below: 2 }],
        };
        let unit = |arm, trial, attempt| Unit { arm, trial, attempt, resume: None };
        assert!(plan.injects(&unit(1, 2, 0)));
        assert!(plan.injects(&unit(1, 2, 1)));
        assert!(!plan.injects(&unit(1, 2, 2)), "attempt 2 succeeds");
        assert!(!plan.injects(&unit(1, 3, 0)), "other trial untouched");
        assert!(!plan.injects(&unit(0, 2, 0)), "other arm untouched");
    }

    #[test]
    fn wildcard_trial_hits_all_trials() {
        let plan = FaultPlan {
            kill_after_trials: None,
            inject_retryable: vec![InjectRetryable {
                arm: 0,
                trial: None,
                attempts_below: u32::MAX,
            }],
        };
        for t in 0..5 {
            assert!(plan.injects(&Unit { arm: 0, trial: t, attempt: 1000, resume: None }));
        }
    }
}
