//! The append-only campaign journal: a hand-rolled line-delimited on-disk
//! format (the offline build env has no serde) recording the campaign's
//! config hash, every finished unit with its output and RNG seed, and the
//! retry/trip events the resumed lifecycle accounting needs.
//!
//! # Format
//!
//! ```text
//! crn-campaign-journal v2
//! config 1f2e3d4c5b6a7988
//! done a=0 t=0 attempt=0 seed=99 completed=412 slots=412 counters=412,300,...
//! fail a=1 t=0 attempt=0 error=injected%20fault
//! trip a=1 trips=1
//! abandon a=1 t=0 attempts=3 why=exhausted
//! skip a=2 t=5 attempt=0 reason=duty%20out%20of%20range
//! wave t=3
//! ```
//!
//! Records are appended as units finish and **fsynced once per scheduling
//! wave** (the checkpoint boundary — see [`Journal::checkpoint`]). Each
//! committed wave ends with a `wave t=<tick>` marker carrying the
//! scheduling tick it was applied at; records after the last marker belong
//! to a wave interrupted mid-apply. Resume replays the complete wave
//! groups through the real retry/backoff/breaker logic at their recorded
//! ticks — restoring mid-streak consecutive-failure counts and pending
//! backoff delays exactly — and treats the uncommitted suffix as
//! already-durable lines the re-executed wave must reproduce. Free text is
//! percent-escaped so every record is one `\n`-terminated line of
//! space-separated `key=value` fields.
//!
//! # Durability and recovery
//!
//! A crash can leave a half-written final line (no terminator, or a
//! persisted prefix). [`Journal::load`] recovers by **truncating to the
//! last parseable line and warning** — never panicking — because the lost
//! suffix is at most the records since the last checkpoint, and unit
//! outputs are pure functions of `(arm, trial)`: re-running them
//! reproduces the truncated records bit for bit. A parse failure *before*
//! the final line is real corruption and is refused loudly, as is a
//! config hash that does not match the resuming campaign's spec.

use super::lifecycle::{AbandonReason, CampaignSpec};
use crate::runner::Trial;
use crn_sim::Counters;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Magic first line; bump the version on any format change.
/// v2 added the `wave` commit marker (exact breaker/backoff resume).
const HEADER: &str = "crn-campaign-journal v2";

/// Everything that can go wrong opening, reading, or resuming a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a campaign journal (bad magic/version line).
    BadHeader,
    /// A non-final line failed to parse — the file is damaged beyond the
    /// torn-tail case recovery handles.
    Corrupt {
        /// 1-based line number of the unparseable line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The journal's config hash does not match the resuming spec: the
    /// campaign definition changed, so resuming would splice incompatible
    /// results. Delete the journal (or restore the spec) to proceed.
    ConfigMismatch {
        /// Hash of the spec trying to resume.
        expected: u64,
        /// Hash recorded in the journal.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => write!(f, "not a campaign journal (bad header)"),
            JournalError::Corrupt { line, msg } => {
                write!(f, "journal corrupt at line {line}: {msg}")
            }
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign config \
                 (spec hash {expected:016x}, journal hash {found:016x}); refusing to resume"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One journal record. `Done`/`Skip`/`Abandon` are terminal per unit;
/// `Fail` charges one retry attempt; `Trip` logs a breaker opening.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Unit finished with an output.
    Done {
        /// Arm index.
        arm: usize,
        /// Trial index within the arm.
        trial: usize,
        /// Attempt that succeeded (0-based).
        attempt: u32,
        /// The trial output, RNG seed included.
        output: Trial,
    },
    /// Unit reported [`super::ArmResult::Skip`].
    Skip {
        /// Arm index.
        arm: usize,
        /// Trial index.
        trial: usize,
        /// Attempt that skipped.
        attempt: u32,
        /// The arm's reason.
        reason: String,
    },
    /// One [`super::ArmResult::Retryable`] attempt.
    Fail {
        /// Arm index.
        arm: usize,
        /// Trial index.
        trial: usize,
        /// The failed attempt (0-based).
        attempt: u32,
        /// The arm's error text.
        error: String,
    },
    /// Unit given up on (budget exhausted or arm tripped).
    Abandon {
        /// Arm index.
        arm: usize,
        /// Trial index.
        trial: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Why it was abandoned.
        why: AbandonReason,
    },
    /// The arm's circuit breaker opened (cumulative trip count).
    Trip {
        /// Arm index.
        arm: usize,
        /// Trips so far, this one included.
        trips: u32,
    },
    /// Commit marker: every record above this line belongs to a wave that
    /// was applied in full at scheduling tick `tick`. Written at the end
    /// of each loop iteration that journaled anything, immediately before
    /// the checkpoint — so a journal whose tail has records after the last
    /// `Wave` was killed mid-wave.
    Wave {
        /// The scheduling tick the wave was applied at.
        tick: u64,
    },
}

/// Percent-escapes free text into a single whitespace-free ASCII token.
/// Everything outside printable ASCII — whitespace, control bytes, and
/// every byte of a multi-byte UTF-8 sequence — is escaped byte-wise, so
/// arbitrary strings round-trip exactly (property-tested in
/// `tests/tests/campaign_e2e.rs`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'=' => out.push_str(&format!("%{b:02X}")),
            0x21..=0x7E => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`esc`]; `None` on a malformed escape.
fn unesc(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hv = u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
            out.push(hv);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// The ten [`Counters`] fields, in journal column order.
fn counters_cells(c: &Counters) -> [u64; 10] {
    [
        c.slots,
        c.broadcasts,
        c.listens,
        c.sleeps,
        c.deliveries,
        c.collisions,
        c.idle_listens,
        c.pu_blocked_listens,
        c.pu_blocked_broadcasts,
        c.pu_busy_channel_slots,
    ]
}

fn counters_from_cells(v: &[u64]) -> Option<Counters> {
    if v.len() != 10 {
        return None;
    }
    Some(Counters {
        slots: v[0],
        broadcasts: v[1],
        listens: v[2],
        sleeps: v[3],
        deliveries: v[4],
        collisions: v[5],
        idle_listens: v[6],
        pu_blocked_listens: v[7],
        pu_blocked_broadcasts: v[8],
        pu_busy_channel_slots: v[9],
    })
}

impl Record {
    /// Encodes the record as one journal line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Record::Done { arm, trial, attempt, output } => {
                let completed = match output.completed_at {
                    Some(s) => s.to_string(),
                    None => "-".to_string(),
                };
                let cells = counters_cells(&output.counters)
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "done a={arm} t={trial} attempt={attempt} seed={} completed={completed} \
                     slots={} counters={cells}",
                    output.seed, output.slots_run
                )
            }
            Record::Skip { arm, trial, attempt, reason } => {
                format!("skip a={arm} t={trial} attempt={attempt} reason={}", esc(reason))
            }
            Record::Fail { arm, trial, attempt, error } => {
                format!("fail a={arm} t={trial} attempt={attempt} error={}", esc(error))
            }
            Record::Abandon { arm, trial, attempts, why } => {
                format!("abandon a={arm} t={trial} attempts={attempts} why={}", why.token())
            }
            Record::Trip { arm, trips } => format!("trip a={arm} trips={trips}"),
            Record::Wave { tick } => format!("wave t={tick}"),
        }
    }

    /// Decodes one journal line; `None` if it is not a valid record.
    pub fn decode(line: &str) -> Option<Record> {
        let mut parts = line.split(' ');
        let tag = parts.next()?;
        let mut field = |key: &str| -> Option<&str> {
            let part = parts.next()?;
            part.strip_prefix(key)?.strip_prefix('=')
        };
        match tag {
            "done" => {
                let arm = field("a")?.parse().ok()?;
                let trial = field("t")?.parse().ok()?;
                let attempt = field("attempt")?.parse().ok()?;
                let seed = field("seed")?.parse().ok()?;
                let completed = match field("completed")? {
                    "-" => None,
                    s => Some(s.parse().ok()?),
                };
                let slots_run = field("slots")?.parse().ok()?;
                let cells: Vec<u64> =
                    field("counters")?.split(',').map(str::parse).collect::<Result<_, _>>().ok()?;
                Some(Record::Done {
                    arm,
                    trial,
                    attempt,
                    output: Trial {
                        seed,
                        completed_at: completed,
                        slots_run,
                        counters: counters_from_cells(&cells)?,
                    },
                })
            }
            "skip" => Some(Record::Skip {
                arm: field("a")?.parse().ok()?,
                trial: field("t")?.parse().ok()?,
                attempt: field("attempt")?.parse().ok()?,
                reason: unesc(field("reason")?)?,
            }),
            "fail" => Some(Record::Fail {
                arm: field("a")?.parse().ok()?,
                trial: field("t")?.parse().ok()?,
                attempt: field("attempt")?.parse().ok()?,
                error: unesc(field("error")?)?,
            }),
            "abandon" => Some(Record::Abandon {
                arm: field("a")?.parse().ok()?,
                trial: field("t")?.parse().ok()?,
                attempts: field("attempts")?.parse().ok()?,
                why: AbandonReason::from_token(field("why")?)?,
            }),
            "trip" => Some(Record::Trip {
                arm: field("a")?.parse().ok()?,
                trips: field("trips")?.parse().ok()?,
            }),
            "wave" => Some(Record::Wave { tick: field("t")?.parse().ok()? }),
            _ => None,
        }
    }
}

/// FNV-1a over one canonical encoding of everything that defines a
/// campaign's results: name, arm names and trial counts, master seed, and
/// the retry/breaker policies (they shape the attempt sequence). The
/// executor thread count is deliberately excluded — results never depend
/// on it, so a journal written at `threads=4` resumes fine at `threads=1`.
pub fn config_hash(spec: &CampaignSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Field separator so adjacent fields cannot alias.
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(spec.name.as_bytes());
    eat(&spec.seed.to_le_bytes());
    eat(&(spec.arms.len() as u64).to_le_bytes());
    for arm in &spec.arms {
        eat(arm.name.as_bytes());
        eat(&(arm.trials as u64).to_le_bytes());
    }
    eat(&spec.retry.max_attempts.to_le_bytes());
    eat(&spec.retry.backoff_base.to_le_bytes());
    eat(&spec.retry.backoff_cap.to_le_bytes());
    eat(&spec.breaker.failure_threshold.to_le_bytes());
    eat(&spec.breaker.cooldown_ticks.to_le_bytes());
    eat(&spec.breaker.max_trips.to_le_bytes());
    h
}

/// Result of loading a journal from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The config hash in the header.
    pub config_hash: u64,
    /// Every record, in append order.
    pub records: Vec<Record>,
    /// `true` if a torn final line was truncated away during recovery.
    pub recovered_torn_tail: bool,
}

/// An open, append-mode campaign journal.
///
/// Records buffer in memory ([`Journal::append`]) and hit the disk — with
/// an `fsync` — at each [`Journal::checkpoint`], which the runner calls
/// once per scheduling wave. Everything up to the last checkpoint survives
/// SIGKILL; everything after is re-derived on resume.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    buf: String,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file),
    /// writing and syncing the header.
    pub fn create(path: &Path, config_hash: u64) -> Result<Journal, JournalError> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        let mut j = Journal { file, path: path.to_path_buf(), buf: String::new() };
        j.buf.push_str(HEADER);
        j.buf.push('\n');
        j.buf.push_str(&format!("config {config_hash:016x}\n"));
        j.checkpoint()?;
        Ok(j)
    }

    /// Loads the journal at `path`, recovering from a torn final line by
    /// truncating the file back to its last parseable line (with a warning
    /// on stderr). Errors on real corruption, never panics.
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Split into \n-terminated lines; remember each line's end offset
        // so recovery can truncate precisely after the last good one.
        let mut lines: Vec<(&[u8], usize)> = Vec::new();
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((&bytes[start..i], i + 1));
                start = i + 1;
            }
        }
        let unterminated_tail = start < bytes.len();

        if lines.len() < 2 {
            // Even the two header lines are incomplete: treat a bare or
            // header-only file as unusable rather than guessing.
            return Err(JournalError::BadHeader);
        }
        if lines[0].0 != HEADER.as_bytes() {
            return Err(JournalError::BadHeader);
        }
        let config_line = std::str::from_utf8(lines[1].0).map_err(|_| JournalError::BadHeader)?;
        let config_hash = config_line
            .strip_prefix("config ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(JournalError::BadHeader)?;

        // Parse the terminated record lines. An unparseable line is a
        // *torn tail* only if nothing follows it (a crash persists a
        // prefix of an append, so damage can only sit at the very end);
        // anything unparseable with data after it is real corruption.
        let mut records = Vec::new();
        let mut good_end = lines[1].1;
        let mut torn = unterminated_tail;
        for (idx, (raw, end)) in lines.iter().enumerate().skip(2) {
            match std::str::from_utf8(raw).ok().and_then(Record::decode) {
                Some(rec) => {
                    records.push(rec);
                    good_end = *end;
                }
                None => {
                    if idx + 1 < lines.len() || unterminated_tail {
                        return Err(JournalError::Corrupt {
                            line: idx + 1,
                            msg: "unparseable record followed by more data".to_string(),
                        });
                    }
                    torn = true;
                }
            }
        }

        let recovered = torn;
        if recovered {
            eprintln!(
                "warning: campaign journal {} has a torn final line (crash mid-append); \
                 truncating {} byte(s) back to the last checkpointed record",
                path.display(),
                bytes.len() - good_end
            );
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        Ok(LoadedJournal { config_hash, records, recovered_torn_tail: recovered })
    }

    /// Re-opens `path` for appending after a successful [`Journal::load`].
    pub fn reopen_append(path: &Path) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Journal { file, path: path.to_path_buf(), buf: String::new() })
    }

    /// Buffers one record (durable at the next [`Journal::checkpoint`]).
    pub fn append(&mut self, record: &Record) {
        self.buf.push_str(&record.encode());
        self.buf.push('\n');
    }

    /// Flushes buffered records and fsyncs: the durability boundary. On
    /// return, every appended record survives SIGKILL.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        if !self.buf.is_empty() {
            self.file.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{ArmSpec, BreakerConfig, RetryPolicy};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("crn-journal-test-{}-{name}.crnj", std::process::id()));
        p
    }

    fn sample_trial() -> Trial {
        Trial {
            seed: 0xDEAD_BEEF,
            completed_at: Some(412),
            slots_run: 500,
            counters: Counters {
                slots: 500,
                broadcasts: 123,
                listens: 456,
                sleeps: 7,
                deliveries: 89,
                collisions: 3,
                idle_listens: 11,
                pu_blocked_listens: 2,
                pu_blocked_broadcasts: 1,
                pu_busy_channel_slots: 40,
            },
        }
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            Record::Done { arm: 3, trial: 17, attempt: 2, output: sample_trial() },
            Record::Done {
                arm: 0,
                trial: 0,
                attempt: 0,
                output: Trial { completed_at: None, ..sample_trial() },
            },
            Record::Skip {
                arm: 1,
                trial: 2,
                attempt: 0,
                reason: "duty = 0.9 > ceiling (mean busy 4)".to_string(),
            },
            Record::Fail {
                arm: 2,
                trial: 9,
                attempt: 1,
                error: "injected: 100%\tof a weird = string\n".to_string(),
            },
            Record::Abandon { arm: 2, trial: 9, attempts: 3, why: AbandonReason::Exhausted },
            Record::Abandon { arm: 4, trial: 0, attempts: 1, why: AbandonReason::Tripped },
            Record::Trip { arm: 2, trips: 2 },
            Record::Wave { tick: 0 },
            Record::Wave { tick: u64::MAX },
        ];
        for rec in &records {
            let line = rec.encode();
            assert!(!line.contains('\n'), "one record = one line: {line:?}");
            assert_eq!(Record::decode(&line).as_ref(), Some(rec), "round trip of {line:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "",
            "done",
            "done a=x t=0 attempt=0 seed=0 completed=- slots=0 counters=0,0,0,0,0,0,0,0,0,0",
            "done a=0 t=0 attempt=0 seed=0 completed=- slots=0 counters=1,2,3", // short counters
            "abandon a=0 t=0 attempts=1 why=becauseisaidso",
            "nonsense a=0",
        ] {
            assert!(Record::decode(bad).is_none(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn create_append_load_round_trips() {
        let path = tmp("roundtrip");
        let rec = Record::Done { arm: 0, trial: 1, attempt: 0, output: sample_trial() };
        {
            let mut j = Journal::create(&path, 0xABCD).unwrap();
            j.append(&rec);
            j.checkpoint().unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.config_hash, 0xABCD);
        assert_eq!(loaded.records, vec![rec]);
        assert!(!loaded.recovered_torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_truncated_not_fatal() {
        let path = tmp("torn");
        let rec = Record::Done { arm: 0, trial: 0, attempt: 0, output: sample_trial() };
        {
            let mut j = Journal::create(&path, 7).unwrap();
            j.append(&rec);
            j.checkpoint().unwrap();
        }
        // Simulate a crash mid-append: a half-written record, no newline.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"done a=1 t=9 attempt=0 seed=12 comp").unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert!(loaded.recovered_torn_tail);
        assert_eq!(loaded.records, vec![rec.clone()], "good prefix survives");
        // The truncation is durable: a second load sees a clean file.
        let again = Journal::load(&path).unwrap();
        assert!(!again.recovered_torn_tail);
        assert_eq!(again.records, vec![rec]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let path = tmp("corrupt");
        {
            let mut j = Journal::create(&path, 7).unwrap();
            j.append(&Record::Trip { arm: 0, trips: 1 });
            j.checkpoint().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let vandalized =
            text.replace("trip a=0 trips=1", "trip a=0 trips=x") + "trip a=1 trips=2\n";
        std::fs::write(&path, vandalized).unwrap();
        match Journal::load(&path) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_hash_sees_every_field() {
        let base = CampaignSpec {
            name: "c".into(),
            arms: vec![ArmSpec::new("a", 3)],
            seed: 9,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        };
        let h = config_hash(&base);
        let mut renamed = base.clone();
        renamed.name = "d".into();
        let mut reseeded = base.clone();
        reseeded.seed = 10;
        let mut regrown = base.clone();
        regrown.arms[0].trials = 4;
        let mut rebudgeted = base.clone();
        rebudgeted.retry.max_attempts += 1;
        let mut rebreakered = base.clone();
        rebreakered.breaker.cooldown_ticks += 1;
        for (what, spec) in [
            ("name", renamed),
            ("seed", reseeded),
            ("trials", regrown),
            ("retry", rebudgeted),
            ("breaker", rebreakered),
        ] {
            assert_ne!(h, config_hash(&spec), "changing {what} must change the hash");
        }
        assert_eq!(h, config_hash(&base.clone()), "hash is deterministic");
    }
}
