//! A per-arm circuit breaker: persistently-failing arms are cut off
//! instead of retried forever.
//!
//! The classic three-state machine (the shape of nebula's
//! `resilience/src/circuit_breaker.rs`), with one deliberate difference:
//! time is measured in the campaign runner's *scheduling ticks*, never the
//! wall clock, so every transition is deterministic and reproducible under
//! any thread count — the same property the rest of the engine stack is
//! built on.
//!
//! ```text
//!            failures ≥ threshold
//!   Closed ────────────────────────▶ Open (until tick + cooldown)
//!     ▲                               │
//!     │ probe succeeds                │ cooldown elapses
//!     │                               ▼
//!     └──────────────────────────  HalfOpen ──▶ probe fails → Open again
//!                                               (trips + 1; > max_trips
//!                                                ⇒ tripped for good)
//! ```

/// Thresholds for one arm's [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive-failure count that opens the breaker.
    pub failure_threshold: u32,
    /// Scheduling ticks the breaker stays `Open` before letting a
    /// half-open probe through.
    pub cooldown_ticks: u64,
    /// Open transitions allowed before the arm is tripped permanently
    /// (its remaining units are abandoned and reported, and the rest of
    /// the campaign proceeds without it).
    pub max_trips: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_ticks: 4, max_trips: 2 }
    }
}

/// The breaker's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counts consecutive failures.
    Closed,
    /// Failing: no unit of this arm runs until `until_tick`.
    Open {
        /// First tick at which a half-open probe may run.
        until_tick: u64,
    },
    /// Cooled down: exactly one probe unit may run; its outcome decides
    /// between `Closed` and `Open`.
    HalfOpen,
}

/// Per-arm breaker instance. Driven by the campaign runner, which applies
/// results in canonical unit order — so the transition sequence is a pure
/// function of the units' outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    failures: u32,
    /// `Closed/HalfOpen → Open` transitions so far.
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker { cfg, state: BreakerState::Closed, failures: 0, trips: 0 }
    }

    /// Current state (after any cooldown elapse at `tick`; see
    /// [`CircuitBreaker::tick`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Open transitions so far.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// `true` once the breaker has exceeded its trip budget: the arm is
    /// finished for good.
    pub fn tripped_permanently(&self) -> bool {
        self.trips > self.cfg.max_trips
    }

    /// Advances breaker time to `tick`: an `Open` breaker whose cooldown
    /// has elapsed becomes `HalfOpen`. Called by the runner before
    /// selecting each wave.
    pub fn tick(&mut self, tick: u64) {
        if let BreakerState::Open { until_tick } = self.state {
            if tick >= until_tick {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// May units of this arm run in the current wave, and how many?
    /// `Closed` ⇒ unbounded, `HalfOpen` ⇒ exactly one probe, `Open` or
    /// permanently tripped ⇒ none.
    pub fn admission(&self) -> usize {
        if self.tripped_permanently() {
            return 0;
        }
        match self.state {
            BreakerState::Closed => usize::MAX,
            BreakerState::HalfOpen => 1,
            BreakerState::Open { .. } => 0,
        }
    }

    /// The next tick at which this breaker could admit a unit it is
    /// currently blocking, if any — lets the runner fast-forward idle
    /// ticks instead of spinning.
    pub fn next_actionable_tick(&self) -> Option<u64> {
        match self.state {
            BreakerState::Open { until_tick } if !self.tripped_permanently() => Some(until_tick),
            _ => None,
        }
    }

    /// Records a successful unit. A half-open probe success closes the
    /// breaker; any success resets the consecutive-failure count.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
    }

    /// Records a failed unit at `tick`. Returns `true` if this failure
    /// opened the breaker (a trip), which the runner journals.
    pub fn on_failure(&mut self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.cfg.failure_threshold {
                    self.open_at(tick);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // The probe failed: straight back to Open.
                self.open_at(tick);
                true
            }
            BreakerState::Open { .. } => {
                // Results applied late in a wave can land after an earlier
                // unit already opened the breaker; they count toward the
                // same outage, not a new trip.
                false
            }
        }
    }

    fn open_at(&mut self, tick: u64) {
        self.trips += 1;
        self.failures = 0;
        self.state = if self.tripped_permanently() {
            BreakerState::Open { until_tick: u64::MAX }
        } else {
            BreakerState::Open { until_tick: tick + self.cfg.cooldown_ticks }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 2, cooldown_ticks: 3, max_trips: 1 }
    }

    #[test]
    fn closed_until_threshold_then_opens() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.admission(), usize::MAX);
        assert!(!b.on_failure(10), "first failure below threshold");
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(10), "second failure trips");
        assert_eq!(b.state(), BreakerState::Open { until_tick: 13 });
        assert_eq!(b.admission(), 0);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        assert!(!b.on_failure(0));
        b.on_success();
        assert!(!b.on_failure(1), "counter was reset, so this is failure #1 again");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_elapses_into_half_open_probe() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0);
        b.tick(2);
        assert_eq!(b.state(), BreakerState::Open { until_tick: 3 }, "cooldown not elapsed");
        b.tick(3);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admission(), 1, "exactly one probe");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_exhausts_trip_budget() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0); // trip 1 (= max_trips)
        b.tick(3);
        assert!(b.on_failure(3), "probe failure re-opens");
        assert_eq!(b.trips(), 2);
        assert!(b.tripped_permanently());
        assert_eq!(b.admission(), 0);
        b.tick(u64::MAX - 1);
        assert_eq!(b.admission(), 0, "a permanently tripped breaker never reopens");
        assert_eq!(b.next_actionable_tick(), None);
    }

    #[test]
    fn late_failures_in_an_open_wave_do_not_double_trip() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(5);
        assert!(b.on_failure(5));
        assert!(!b.on_failure(5), "same-wave failure after the trip is absorbed");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn next_actionable_tick_reports_reopen() {
        let mut b = CircuitBreaker::new(BreakerConfig { max_trips: 5, ..cfg() });
        b.on_failure(7);
        b.on_failure(7);
        assert_eq!(b.next_actionable_tick(), Some(10));
    }
}
