//! Progress observation and cooperative cancellation for campaign runs.
//!
//! A long-lived caller (the campaign server's scheduler thread) needs two
//! things the batch entry points never did: a live view of per-arm
//! progress while [`super::run_campaign`] holds the thread, and a way to
//! ask a running campaign to stop at a safe boundary. Both are deliberately
//! *observational*: an observer can never change what a campaign computes
//! — snapshots are emitted after each wave is applied and journaled, and a
//! cancel takes effect only at a wave boundary (the same boundary the
//! fault-plan kill uses), so the journal stays a prefix of the
//! uninterrupted run's and a later resume is still bit-identical.
//!
//! The trait is `Sync + Send`-friendly by construction (`&self` methods,
//! no interior requirements), so the natural implementation is a handle
//! holding an `Arc<Mutex<…>>` slot for the latest snapshot plus an
//! `Arc<AtomicBool>` cancel flag — exactly what `crn-server`'s job store
//! does.

use super::breaker::BreakerState;

/// Point-in-time progress of one arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmProgress {
    /// The arm's name from the spec.
    pub name: String,
    /// Trials finished with an output.
    pub done: usize,
    /// Trials skipped by the arm.
    pub skipped: usize,
    /// Trials given up on (retry budget or permanent trip).
    pub abandoned: usize,
    /// Trials not yet terminal.
    pub pending: usize,
    /// Failed attempts charged so far.
    pub retries: u64,
    /// `run_unit` invocations charged so far.
    pub invocations: u64,
    /// The arm's breaker state at snapshot time.
    pub breaker: BreakerState,
    /// `true` once the breaker is permanently tripped.
    pub tripped: bool,
}

/// Point-in-time progress of a whole campaign run, emitted after each
/// applied wave (and once on entry, so a resumed campaign immediately
/// reports its restored state).
///
/// The snapshot deliberately carries no wall-clock state — the campaign
/// core is clock-free (tick-based), and only *measures* time around the
/// journal fsync, never schedules on it. Rate and ETA are therefore
/// computed by the caller, who passes its own monotonic elapsed time into
/// [`ProgressSnapshot::throughput`] / [`ProgressSnapshot::eta`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// The scheduling tick of the wave this snapshot follows.
    pub tick: u64,
    /// Terminal units recorded so far (done + skipped + abandoned),
    /// including units restored from the journal. Monotone across the
    /// snapshots of one run.
    pub recorded: usize,
    /// Total units in the campaign ([`super::CampaignSpec::total_trials`]).
    pub total: usize,
    /// Waves applied (and checkpointed) by *this* run so far — excludes
    /// waves replayed from the journal.
    pub waves: u64,
    /// Units currently parked in retry backoff (their next attempt is
    /// scheduled for a strictly later tick).
    pub backoff_depth: usize,
    /// `true` when this run restored prior state from a journal.
    pub resumed: bool,
    /// Terminal units that were restored from the journal rather than
    /// computed by this run (`0` on a fresh run).
    pub resumed_units: usize,
    /// Journal checkpoints (fsyncs) performed by this run.
    pub fsync_count: u64,
    /// Total wall-clock nanoseconds spent in those fsyncs.
    pub fsync_nanos_total: u64,
    /// Duration of the most recent fsync, in nanoseconds.
    pub fsync_nanos_last: u64,
    /// Per-arm progress, in spec order.
    pub arms: Vec<ArmProgress>,
}

impl ProgressSnapshot {
    /// Fraction of units recorded, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.recorded as f64 / self.total.max(1) as f64
    }

    /// Units this run has computed itself (recorded minus the
    /// journal-restored prefix) — the numerator for rate estimates.
    pub fn units_this_run(&self) -> usize {
        self.recorded.saturating_sub(self.resumed_units)
    }

    /// Units per second, given the caller's monotonic elapsed time since
    /// the run started. `0.0` when `elapsed` is zero.
    pub fn throughput(&self, elapsed: std::time::Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            self.units_this_run() as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated time to completion, extrapolating this run's observed
    /// rate over the remaining units. `None` until the run has computed at
    /// least one unit in nonzero elapsed time (no rate to extrapolate).
    pub fn eta(&self, elapsed: std::time::Duration) -> Option<std::time::Duration> {
        let rate = self.throughput(elapsed);
        if rate <= 0.0 {
            return None;
        }
        let remaining = self.total.saturating_sub(self.recorded);
        Some(std::time::Duration::from_secs_f64(remaining as f64 / rate))
    }
}

/// Hooks a caller may install on a campaign run. Both methods default to
/// no-ops, and neither can affect the campaign's results: snapshots are
/// read-only views, and cancellation stops the run at a journaled wave
/// boundary exactly as the fault-plan kill switch does.
pub trait CampaignObserver: Sync {
    /// Called with a fresh snapshot after every applied (and checkpointed)
    /// wave, plus once before the first wave. Runs on the campaign thread:
    /// keep it cheap (copy the snapshot out, don't compute under it).
    fn on_progress(&self, snapshot: &ProgressSnapshot) {
        let _ = snapshot;
    }

    /// Polled once per scheduling iteration. Returning `true` makes the
    /// run checkpoint and return [`super::CampaignOutcome::Cancelled`]
    /// before selecting the next wave; already-applied work stays durable
    /// and a later run with the same spec resumes from the journal.
    fn cancel_requested(&self) -> bool {
        false
    }
}

/// The no-op observer the batch entry points use.
impl CampaignObserver for () {}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(recorded: usize, total: usize) -> ProgressSnapshot {
        ProgressSnapshot {
            tick: 0,
            recorded,
            total,
            waves: 0,
            backoff_depth: 0,
            resumed: false,
            resumed_units: 0,
            fsync_count: 0,
            fsync_nanos_total: 0,
            fsync_nanos_last: 0,
            arms: Vec::new(),
        }
    }

    #[test]
    fn fraction_is_safe_on_empty_campaigns() {
        assert_eq!(snap(0, 0).fraction(), 0.0);
        assert_eq!(snap(2, 4).fraction(), 0.5);
    }

    #[test]
    fn throughput_and_eta_use_caller_elapsed_and_exclude_resumed_units() {
        use std::time::Duration;
        let mut s = snap(30, 50);
        s.resumed = true;
        s.resumed_units = 10;
        // 20 units computed by this run in 10s -> 2 units/s; 20 remain.
        assert_eq!(s.units_this_run(), 20);
        let rate = s.throughput(Duration::from_secs(10));
        assert!((rate - 2.0).abs() < 1e-12);
        assert_eq!(s.eta(Duration::from_secs(10)), Some(Duration::from_secs(10)));
        // No elapsed time or no computed units -> no rate, no ETA.
        assert_eq!(s.throughput(Duration::ZERO), 0.0);
        assert_eq!(s.eta(Duration::ZERO), None);
        assert_eq!(snap(0, 50).eta(Duration::from_secs(5)), None);
    }
}
