//! Progress observation and cooperative cancellation for campaign runs.
//!
//! A long-lived caller (the campaign server's scheduler thread) needs two
//! things the batch entry points never did: a live view of per-arm
//! progress while [`super::run_campaign`] holds the thread, and a way to
//! ask a running campaign to stop at a safe boundary. Both are deliberately
//! *observational*: an observer can never change what a campaign computes
//! — snapshots are emitted after each wave is applied and journaled, and a
//! cancel takes effect only at a wave boundary (the same boundary the
//! fault-plan kill uses), so the journal stays a prefix of the
//! uninterrupted run's and a later resume is still bit-identical.
//!
//! The trait is `Sync + Send`-friendly by construction (`&self` methods,
//! no interior requirements), so the natural implementation is a handle
//! holding an `Arc<Mutex<…>>` slot for the latest snapshot plus an
//! `Arc<AtomicBool>` cancel flag — exactly what `crn-server`'s job store
//! does.

use super::breaker::BreakerState;

/// Point-in-time progress of one arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmProgress {
    /// The arm's name from the spec.
    pub name: String,
    /// Trials finished with an output.
    pub done: usize,
    /// Trials skipped by the arm.
    pub skipped: usize,
    /// Trials given up on (retry budget or permanent trip).
    pub abandoned: usize,
    /// Trials not yet terminal.
    pub pending: usize,
    /// Failed attempts charged so far.
    pub retries: u64,
    /// `run_unit` invocations charged so far.
    pub invocations: u64,
    /// The arm's breaker state at snapshot time.
    pub breaker: BreakerState,
    /// `true` once the breaker is permanently tripped.
    pub tripped: bool,
}

/// Point-in-time progress of a whole campaign run, emitted after each
/// applied wave (and once on entry, so a resumed campaign immediately
/// reports its restored state).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// The scheduling tick of the wave this snapshot follows.
    pub tick: u64,
    /// Terminal units recorded so far (done + skipped + abandoned),
    /// including units restored from the journal. Monotone across the
    /// snapshots of one run.
    pub recorded: usize,
    /// Total units in the campaign ([`super::CampaignSpec::total_trials`]).
    pub total: usize,
    /// Per-arm progress, in spec order.
    pub arms: Vec<ArmProgress>,
}

impl ProgressSnapshot {
    /// Fraction of units recorded, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.recorded as f64 / self.total.max(1) as f64
    }
}

/// Hooks a caller may install on a campaign run. Both methods default to
/// no-ops, and neither can affect the campaign's results: snapshots are
/// read-only views, and cancellation stops the run at a journaled wave
/// boundary exactly as the fault-plan kill switch does.
pub trait CampaignObserver: Sync {
    /// Called with a fresh snapshot after every applied (and checkpointed)
    /// wave, plus once before the first wave. Runs on the campaign thread:
    /// keep it cheap (copy the snapshot out, don't compute under it).
    fn on_progress(&self, snapshot: &ProgressSnapshot) {
        let _ = snapshot;
    }

    /// Polled once per scheduling iteration. Returning `true` makes the
    /// run checkpoint and return [`super::CampaignOutcome::Cancelled`]
    /// before selecting the next wave; already-applied work stays durable
    /// and a later run with the same spec resumes from the journal.
    fn cancel_requested(&self) -> bool {
        false
    }
}

/// The no-op observer the batch entry points use.
impl CampaignObserver for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_safe_on_empty_campaigns() {
        let snap = ProgressSnapshot { tick: 0, recorded: 0, total: 0, arms: Vec::new() };
        assert_eq!(snap.fraction(), 0.0);
        let half = ProgressSnapshot { tick: 1, recorded: 2, total: 4, arms: Vec::new() };
        assert_eq!(half.fraction(), 0.5);
    }
}
