//! Resumable, fault-tolerant experiment campaigns.
//!
//! A *campaign* is a grid of experiment **arms** (one per sweep point) ×
//! **trials** (one unit of work per `(arm, trial)` pair), executed by a
//! runner that owns every flow-control decision the arms themselves used
//! to hand-roll:
//!
//! * **Lifecycle** ([`ArmResult`]) — an arm reports *what happened*
//!   (`Done` / `Continue` / `Skip` / `Retryable`); the runner — never the
//!   arm — owns retry budgets, exponential backoff, and circuit breaking.
//!   This is the `ActionResult` split from nebula's node-execution model:
//!   `Retryable` is always a reaction to an error, and the retry *policy*
//!   lives in the engine, not the action.
//! * **Circuit breaking** ([`CircuitBreaker`]) — a persistently-failing
//!   arm (e.g. a duty-cycle point whose protocol never terminates inside
//!   its slot budget) trips `Closed → Open → HalfOpen` instead of being
//!   retried forever, without stalling the other arms.
//! * **Checkpoint/resume** ([`Journal`]) — every completed unit is
//!   appended to an on-disk line journal (config hash, per-trial outputs,
//!   RNG seeds, retry/trip events) and fsynced once per scheduling wave,
//!   so a SIGKILL'd campaign resumes exactly where it stopped. A config
//!   hash mismatch refuses to resume.
//! * **Fault injection** ([`FaultPlan`]) — the harness can kill itself
//!   after N completed trials or inject `Retryable` failures on chosen
//!   arms, which is how the kill/resume differential tests and the CI
//!   smoke step drive every path above deterministically.
//! * **Observation & cancel** ([`CampaignObserver`]) — a long-lived
//!   caller (the `crn-server` scheduler) can watch per-wave
//!   [`ProgressSnapshot`]s and request cancellation at a wave boundary;
//!   both are strictly read-only with respect to results and journal
//!   bytes.
//!
//! # Determinism of resume
//!
//! Unit outputs are a pure function of `(arm, trial)`: every trial derives
//! its engine seed from the campaign spec, never from wall-clock time or
//! scheduling order, and backoff delays are counted in *scheduling ticks*
//! (wave indices), not `sleep`s. The runner executes one wave of ready
//! units in parallel (work-stealing, any thread count), then applies the
//! results to the lifecycle state machine *sequentially in unit order* —
//! so retry accounting, breaker transitions, and journal contents are
//! identical at any parallelism, and a resumed campaign is bit-identical
//! to an uninterrupted one (enforced by `tests/tests/campaign_e2e.rs`
//! across thread counts {1, 2, 4}).

mod breaker;
mod journal;
mod lifecycle;
mod observe;
mod runner;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use journal::{config_hash, Journal, JournalError, LoadedJournal, Record};
pub use lifecycle::{
    AbandonReason, ArmResult, ArmSpec, CampaignSpec, FaultPlan, InjectRetryable, RetryPolicy, Unit,
};
pub use observe::{ArmProgress, CampaignObserver, ProgressSnapshot};
pub use runner::{
    run_campaign, run_campaign_observed, ArmReport, CampaignError, CampaignOutcome, CampaignReport,
    TrialState,
};
