//! The campaign runner: deterministic wave scheduling of units over the
//! work-stealing trial executor, with the retry/backoff/breaker lifecycle
//! applied in canonical order and every finished unit journaled.
//!
//! # Scheduling model
//!
//! Time is a **tick** counter (no wall clock). Each iteration:
//!
//! 1. permanently-tripped arms have their remaining units abandoned;
//! 2. breakers advance (`Open` cooldowns may elapse into `HalfOpen`);
//! 3. the wave is selected: every waiting unit whose `at_tick` has come
//!    and whose arm's breaker admits it (`Closed` ⇒ all, `HalfOpen` ⇒ one
//!    probe, `Open` ⇒ none), in `(arm, trial)` order;
//! 4. the wave runs in parallel on [`run_parallel_stateful`] — any thread
//!    count, because unit results are pure functions of the unit;
//! 5. results are applied **sequentially in unit order**: outputs
//!    recorded and journaled, retries re-enqueued at `tick + backoff`,
//!    breakers fed; then a `wave t=<tick>` commit marker is appended, the
//!    journal checkpoints (fsync), and the tick advances. If nothing is
//!    runnable, the tick fast-forwards to the next backoff expiry or
//!    breaker reopen instead of spinning.
//!
//! Step 5's ordering is what makes retry accounting, breaker transitions,
//! and journal bytes identical across thread counts — the wave *runs*
//! concurrently but is *applied* canonically.
//!
//! # Resume
//!
//! The journal's `wave` markers record the tick every committed wave was
//! applied at, so resume **replays** each complete wave group through the
//! real lifecycle code ([`replay_wave`]) — consecutive-failure streaks,
//! `Open`-breaker cooldown deadlines, and pending backoff `at_tick`s come
//! back *exactly*, not approximately. Records after the last marker are a
//! wave that was killed mid-apply: they are already durable on disk, so
//! the loop resumes from the tick after the last commit, deterministically
//! re-executes that wave, and matches each would-be append against the
//! journaled suffix instead of writing it twice. A journal ending on a
//! commit therefore resumes without invoking `run_unit` at all.

use super::breaker::CircuitBreaker;
use super::journal::{config_hash, Journal, JournalError, Record};
use super::lifecycle::{AbandonReason, ArmResult, CampaignSpec, FaultPlan, RetryPolicy, Unit};
use super::observe::{ArmProgress, CampaignObserver, ProgressSnapshot};
use crate::runner::{run_parallel_stateful, Trial};
use std::collections::VecDeque;
use std::path::Path;

/// Why [`run_campaign`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Every unit reached a terminal state.
    Completed,
    /// The [`FaultPlan`] kill switch fired after `recorded` terminal
    /// units (journal checkpointed — the simulated SIGKILL boundary).
    Killed {
        /// Terminal units recorded when the kill fired.
        recorded: usize,
    },
    /// A [`CampaignObserver`] requested cancellation; the run stopped at a
    /// wave boundary with the journal checkpointed, so a later run with
    /// the same spec resumes where this one stopped.
    Cancelled {
        /// Terminal units recorded when the cancel took effect.
        recorded: usize,
    },
}

/// Final state of one `(arm, trial)` unit.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialState {
    /// Finished with an output.
    Done(Trial),
    /// Skipped by the arm, with its reason.
    Skipped(String),
    /// Given up on after `attempts` attempts.
    Abandoned {
        /// Attempts consumed.
        attempts: u32,
        /// Why it was abandoned.
        why: AbandonReason,
    },
    /// Not yet terminal (only present after a kill).
    Pending,
}

impl TrialState {
    /// The output, if the unit finished.
    pub fn output(&self) -> Option<&Trial> {
        match self {
            TrialState::Done(t) => Some(t),
            _ => None,
        }
    }
}

/// Per-arm outcome and lifecycle accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// The arm's name from the spec.
    pub name: String,
    /// One state per trial.
    pub trials: Vec<TrialState>,
    /// `run_unit` invocations charged to this arm (failed + terminal
    /// attempts; restored from the journal on resume — `Continue`
    /// re-entries are not journaled and count only within one process).
    pub invocations: u64,
    /// Failed ([`ArmResult::Retryable`]) attempts.
    pub retries: u64,
    /// Total backoff delay scheduled for this arm, in ticks.
    pub backoff_ticks: u64,
    /// Times the arm's breaker opened.
    pub breaker_trips: u32,
    /// `true` if the breaker exceeded its trip budget and the arm was cut
    /// off for good.
    pub tripped: bool,
}

/// What a campaign run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Completed, or killed by the fault plan.
    pub outcome: CampaignOutcome,
    /// Per-arm results, in spec order.
    pub arms: Vec<ArmReport>,
    /// Final value of the scheduling tick counter. Absolute: a resumed
    /// run continues counting from the journal's last committed wave, so
    /// this matches the uninterrupted run's count.
    pub ticks: u64,
    /// `true` if the run resumed from an existing journal.
    pub resumed: bool,
    /// `true` if journal recovery truncated a torn final line.
    pub recovered_torn_tail: bool,
}

impl CampaignReport {
    /// The `Done` outputs of one arm, in trial order.
    pub fn done_outputs(&self, arm: usize) -> Vec<Trial> {
        self.arms[arm].trials.iter().filter_map(|t| t.output().copied()).collect()
    }
}

/// Campaign failure (journal trouble; unit failures are *handled*, not
/// returned).
#[derive(Debug)]
pub enum CampaignError {
    /// The journal could not be created, loaded, resumed, or written.
    Journal(JournalError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "campaign journal error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// In-flight state of one unit.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Waiting { at_tick: u64, attempt: u32, resume: Option<u64> },
    Terminal(TrialState),
}

struct ArmState {
    breaker: CircuitBreaker,
    slots: Vec<Slot>,
    invocations: u64,
    retries: u64,
    backoff_ticks: u64,
}

/// The journal plus the resume dedup queue: records a killed run already
/// persisted past its last `wave` commit marker. A resumed run re-executes
/// that wave deterministically, so each would-be append is matched against
/// the queue front and *not* written again — journal bytes stay identical
/// to an uninterrupted run's.
struct JournalSink {
    journal: Option<Journal>,
    pending: VecDeque<Record>,
    /// Anything appended (or matched against `pending`) since the last
    /// `wave` commit marker — decides whether the iteration ends with one.
    appended: bool,
}

impl JournalSink {
    fn append(&mut self, record: Record) {
        self.appended = true;
        if let Some(front) = self.pending.front() {
            debug_assert_eq!(
                front, &record,
                "resumed wave must reproduce the journaled partial wave byte for byte"
            );
            self.pending.pop_front();
            return; // already durable on disk from the killed run
        }
        if let Some(j) = self.journal.as_mut() {
            j.append(&record);
        }
    }

    /// Checkpoints (fsyncs) the journal, returning the wall-clock
    /// nanoseconds the fsync took — `None` for in-memory runs. The timing
    /// is measurement-only: nothing in the campaign lifecycle branches on
    /// it (the core stays clock-free), it is merely reported through
    /// [`ProgressSnapshot`].
    fn checkpoint(&mut self) -> Result<Option<u64>, JournalError> {
        match self.journal.as_mut() {
            Some(j) => {
                let start = std::time::Instant::now();
                j.checkpoint()?;
                Ok(Some(start.elapsed().as_nanos() as u64))
            }
            None => Ok(None),
        }
    }
}

/// Measurement-only accounting of the live run — everything
/// [`ProgressSnapshot`] carries beyond the lifecycle state itself. Kept
/// out of [`ArmState`] because none of it may ever influence scheduling.
#[derive(Default)]
struct RunStats {
    waves: u64,
    resumed: bool,
    resumed_units: usize,
    fsync_count: u64,
    fsync_nanos_total: u64,
    fsync_nanos_last: u64,
}

impl RunStats {
    fn record_fsync(&mut self, nanos: Option<u64>) {
        if let Some(ns) = nanos {
            self.fsync_count += 1;
            self.fsync_nanos_total += ns;
            self.fsync_nanos_last = ns;
        }
    }
}

/// Runs (or resumes) the campaign described by `spec`.
///
/// * `threads` — parallelism of each wave; never affects results.
/// * `journal_path` — `Some(path)`: journal every finished unit there and
///   **resume** from it if it already exists (a config-hash mismatch is
///   refused as [`JournalError::ConfigMismatch`]). `None`: in-memory only.
/// * `fault` — deterministic fault injection; [`FaultPlan::none`] for
///   production runs.
/// * `init`/`run_unit` — the per-worker state factory and the arm
///   dispatcher, exactly the contract of the stateful trial runner: `init`
///   is called once per worker thread (hold long-lived engines there) and
///   `run_unit` must be a pure function of the [`Unit`] (plus cached,
///   observationally-invisible state).
pub fn run_campaign<S>(
    spec: &CampaignSpec,
    threads: usize,
    journal_path: Option<&Path>,
    fault: &FaultPlan,
    init: impl Fn() -> S + Sync,
    run_unit: impl Fn(&mut S, &Unit) -> ArmResult<Trial> + Sync,
) -> Result<CampaignReport, CampaignError> {
    run_campaign_observed(spec, threads, journal_path, fault, &(), init, run_unit)
}

/// [`run_campaign`] with an observer attached: `observer.on_progress` is
/// called with a [`ProgressSnapshot`] once on entry (after any journal
/// restore) and after every applied wave, and `observer.cancel_requested`
/// is polled once per scheduling iteration — returning `true` stops the
/// run at the next wave boundary as [`CampaignOutcome::Cancelled`], with
/// the journal checkpointed so the campaign resumes later.
///
/// The observer is strictly read-only: it cannot change a single journal
/// byte or unit output, only *when* the run stops (which the journal's
/// resume semantics already make harmless).
pub fn run_campaign_observed<S>(
    spec: &CampaignSpec,
    threads: usize,
    journal_path: Option<&Path>,
    fault: &FaultPlan,
    observer: &dyn CampaignObserver,
    init: impl Fn() -> S + Sync,
    run_unit: impl Fn(&mut S, &Unit) -> ArmResult<Trial> + Sync,
) -> Result<CampaignReport, CampaignError> {
    let hash = config_hash(spec);
    let mut arms: Vec<ArmState> = spec
        .arms
        .iter()
        .map(|a| ArmState {
            breaker: CircuitBreaker::new(spec.breaker),
            slots: vec![Slot::Waiting { at_tick: 0, attempt: 0, resume: None }; a.trials],
            invocations: 0,
            retries: 0,
            backoff_ticks: 0,
        })
        .collect();

    // Terminal units recorded so far (restored + this process) — the kill
    // switch's clock.
    let mut recorded = 0usize;
    let mut resumed = false;
    let mut recovered_torn_tail = false;
    let mut start_tick = 0u64;
    let mut pending: VecDeque<Record> = VecDeque::new();

    let journal = match journal_path {
        None => None,
        Some(path) if path.exists() => {
            let loaded = Journal::load(path)?;
            if loaded.config_hash != hash {
                return Err(JournalError::ConfigMismatch {
                    expected: hash,
                    found: loaded.config_hash,
                }
                .into());
            }
            resumed = true;
            recovered_torn_tail = loaded.recovered_torn_tail;
            // Replay every committed wave group at its recorded tick;
            // records after the last commit marker are the dedup queue a
            // re-executed partial wave is matched against.
            let mut group_start = 0usize;
            for (i, rec) in loaded.records.iter().enumerate() {
                if let Record::Wave { tick } = rec {
                    replay_wave(
                        &mut arms,
                        &spec.retry,
                        &loaded.records[group_start..i],
                        *tick,
                        &mut recorded,
                    );
                    group_start = i + 1;
                    start_tick = tick + 1;
                }
            }
            pending.extend(loaded.records[group_start..].iter().cloned());
            Some(Journal::reopen_append(path)?)
        }
        Some(path) => Some(Journal::create(path, hash)?),
    };
    let mut sink = JournalSink { journal, pending, appended: false };
    let mut stats = RunStats { resumed, resumed_units: recorded, ..RunStats::default() };

    let kill_now = |recorded: usize| fault.kill_after_trials.is_some_and(|n| recorded >= n);

    // The entry snapshot: a resumed campaign reports its restored state
    // before any new wave runs.
    observer.on_progress(&snapshot(spec, &arms, start_tick, recorded, &stats));

    let mut tick = start_tick;
    let report = 'campaign: loop {
        // 0. Cooperative cancel, at the same boundary the kill switch
        // uses: everything applied so far is already checkpointed, so
        // stopping here is exactly as safe as a SIGKILL between waves.
        if observer.cancel_requested() {
            break finish(
                CampaignOutcome::Cancelled { recorded },
                spec,
                arms,
                tick,
                resumed,
                recovered_torn_tail,
            );
        }

        // 1. Sweep permanently tripped arms: their waiting units are
        // abandoned (they could otherwise wait forever on a breaker that
        // never reopens). Also handles arms restored as tripped.
        for (a, arm) in arms.iter_mut().enumerate() {
            if !arm.breaker.tripped_permanently() {
                continue;
            }
            for (t, slot) in arm.slots.iter_mut().enumerate() {
                if let Slot::Waiting { attempt, .. } = *slot {
                    *slot = Slot::Terminal(TrialState::Abandoned {
                        attempts: attempt,
                        why: AbandonReason::Tripped,
                    });
                    sink.append(Record::Abandon {
                        arm: a,
                        trial: t,
                        attempts: attempt,
                        why: AbandonReason::Tripped,
                    });
                    recorded += 1;
                    if kill_now(recorded) {
                        break 'campaign finish(
                            CampaignOutcome::Killed { recorded },
                            spec,
                            arms,
                            tick,
                            resumed,
                            recovered_torn_tail,
                        );
                    }
                }
            }
        }

        // 2. Advance breaker time.
        for arm in arms.iter_mut() {
            arm.breaker.tick(tick);
        }

        // 3. Select the wave, in canonical (arm, trial) order.
        let mut wave: Vec<Unit> = Vec::new();
        for (a, arm) in arms.iter().enumerate() {
            let mut budget = arm.breaker.admission();
            for (t, slot) in arm.slots.iter().enumerate() {
                if budget == 0 {
                    break;
                }
                if let Slot::Waiting { at_tick, attempt, resume } = *slot {
                    if at_tick <= tick {
                        wave.push(Unit { arm: a, trial: t, attempt, resume });
                        budget -= 1;
                    }
                }
            }
        }

        if wave.is_empty() {
            // Nothing runnable. Done — or fast-forward to the next
            // actionable tick (earliest backoff expiry or breaker reopen).
            let mut next: Option<u64> = None;
            let mut bump = |t: u64| next = Some(next.map_or(t, |n: u64| n.min(t)));
            for arm in arms.iter() {
                let has_waiting = arm.slots.iter().any(|s| matches!(s, Slot::Waiting { .. }));
                if !has_waiting {
                    continue;
                }
                if let Some(t) = arm.breaker.next_actionable_tick() {
                    bump(t);
                } else if arm.breaker.admission() > 0 {
                    for slot in &arm.slots {
                        if let Slot::Waiting { at_tick, .. } = *slot {
                            bump(at_tick);
                        }
                    }
                }
            }
            match next {
                Some(t) => {
                    debug_assert!(t > tick, "fast-forward must make progress");
                    tick = t.max(tick + 1);
                    continue;
                }
                None => {
                    break finish(
                        CampaignOutcome::Completed,
                        spec,
                        arms,
                        tick,
                        resumed,
                        recovered_torn_tail,
                    )
                }
            }
        }

        // 4. Run the wave in parallel. Fault injection replaces the
        // result *before* the arm runs; results are a pure function of
        // the unit either way, so any thread count gives the same wave.
        let results: Vec<ArmResult<Trial>> =
            run_parallel_stateful(threads, wave.len(), &init, |state, i| {
                let unit = &wave[i];
                if fault.injects(unit) {
                    ArmResult::Retryable { error: "injected by FaultPlan".to_string() }
                } else {
                    run_unit(state, unit)
                }
            });

        // 5. Apply results sequentially in unit order.
        for (unit, result) in wave.iter().zip(results) {
            let arm = &mut arms[unit.arm];
            arm.invocations += 1;
            match result {
                ArmResult::Done { output } => {
                    arm.slots[unit.trial] = Slot::Terminal(TrialState::Done(output));
                    arm.breaker.on_success();
                    sink.append(Record::Done {
                        arm: unit.arm,
                        trial: unit.trial,
                        attempt: unit.attempt,
                        output,
                    });
                    recorded += 1;
                }
                ArmResult::Skip { reason } => {
                    arm.slots[unit.trial] = Slot::Terminal(TrialState::Skipped(reason.clone()));
                    arm.breaker.on_success();
                    sink.append(Record::Skip {
                        arm: unit.arm,
                        trial: unit.trial,
                        attempt: unit.attempt,
                        reason,
                    });
                    recorded += 1;
                }
                ArmResult::Continue { progress: _, resume_key } => {
                    // Re-enqueue next tick; not journaled (a crash replays
                    // the whole unit, which is a pure function).
                    arm.slots[unit.trial] = Slot::Waiting {
                        at_tick: tick + 1,
                        attempt: unit.attempt,
                        resume: Some(resume_key),
                    };
                }
                ArmResult::Retryable { error } => {
                    arm.retries += 1;
                    sink.append(Record::Fail {
                        arm: unit.arm,
                        trial: unit.trial,
                        attempt: unit.attempt,
                        error,
                    });
                    if arm.breaker.on_failure(tick) {
                        sink.append(Record::Trip { arm: unit.arm, trips: arm.breaker.trips() });
                    }
                    let attempts_used = unit.attempt + 1;
                    if attempts_used >= spec.retry.max_attempts {
                        arm.slots[unit.trial] = Slot::Terminal(TrialState::Abandoned {
                            attempts: attempts_used,
                            why: AbandonReason::Exhausted,
                        });
                        sink.append(Record::Abandon {
                            arm: unit.arm,
                            trial: unit.trial,
                            attempts: attempts_used,
                            why: AbandonReason::Exhausted,
                        });
                        recorded += 1;
                    } else {
                        let delay = spec.retry.backoff_ticks(unit.attempt);
                        arm.backoff_ticks += delay;
                        arm.slots[unit.trial] = Slot::Waiting {
                            at_tick: tick + delay.max(1),
                            attempt: attempts_used,
                            resume: None,
                        };
                    }
                }
            }
            if kill_now(recorded) {
                // The simulated SIGKILL: checkpoint what is applied so
                // far and drop the rest of the wave on the floor, exactly
                // as a real kill at this trial boundary would.
                break 'campaign finish(
                    CampaignOutcome::Killed { recorded },
                    spec,
                    arms,
                    tick,
                    resumed,
                    recovered_torn_tail,
                );
            }
        }

        // The wave's records become durable together: the commit marker,
        // then one checkpoint (fsync) per wave. Iterations that journaled
        // nothing (fast-forwards, all-`Continue` waves) get no marker —
        // their buffered predecessors, if any, commit with a later wave.
        if sink.appended {
            sink.append(Record::Wave { tick });
            sink.appended = false;
            stats.waves += 1;
        }
        let fsync = sink.checkpoint()?;
        stats.record_fsync(fsync);
        observer.on_progress(&snapshot(spec, &arms, tick, recorded, &stats));
        tick += 1;
    };

    sink.checkpoint()?;
    Ok(report)
}

/// Replays one committed wave group — the records between two `wave`
/// markers — through the real lifecycle logic at the group's recorded
/// tick. Because this runs the same `on_success`/`on_failure`/backoff
/// code the live loop runs, a resumed campaign's breaker streaks, open
/// cooldown deadlines, pending `at_tick`s, and accounting are *exactly*
/// the uninterrupted run's, not an approximation from terminal states.
fn replay_wave(
    arms: &mut [ArmState],
    retry: &RetryPolicy,
    records: &[Record],
    tick: u64,
    recorded: &mut usize,
) {
    // Step 2 of the live loop. Intermediate fast-forward ticks journaled
    // nothing and `Open → HalfOpen` depends only on the final tick, so
    // one advance per group is exact.
    for arm in arms.iter_mut() {
        arm.breaker.tick(tick);
    }
    for rec in records {
        match rec {
            Record::Done { arm, trial, output, .. } => {
                let a = &mut arms[*arm];
                a.invocations += 1;
                a.slots[*trial] = Slot::Terminal(TrialState::Done(*output));
                a.breaker.on_success();
                *recorded += 1;
            }
            Record::Skip { arm, trial, reason, .. } => {
                let a = &mut arms[*arm];
                a.invocations += 1;
                a.slots[*trial] = Slot::Terminal(TrialState::Skipped(reason.clone()));
                a.breaker.on_success();
                *recorded += 1;
            }
            Record::Fail { arm, trial, attempt, .. } => {
                let a = &mut arms[*arm];
                a.invocations += 1;
                a.retries += 1;
                a.breaker.on_failure(tick);
                let attempts_used = attempt + 1;
                if attempts_used < retry.max_attempts {
                    let delay = retry.backoff_ticks(*attempt);
                    a.backoff_ticks += delay;
                    a.slots[*trial] = Slot::Waiting {
                        at_tick: tick + delay.max(1),
                        attempt: attempts_used,
                        resume: None,
                    };
                }
                // Budget exhausted: the Abandon record that follows in
                // the same group makes the unit terminal.
            }
            Record::Abandon { arm, trial, attempts, why } => {
                arms[*arm].slots[*trial] =
                    Slot::Terminal(TrialState::Abandoned { attempts: *attempts, why: *why });
                *recorded += 1;
            }
            Record::Trip { arm, trips } => {
                // Trips are reproduced by `on_failure` above; the record
                // is a cross-check of the replay.
                debug_assert_eq!(
                    arms[*arm].breaker.trips(),
                    *trips,
                    "journaled trip count must match the replayed breaker"
                );
            }
            Record::Wave { .. } => {
                debug_assert!(false, "wave markers delimit groups and never appear inside one");
            }
        }
    }
}

/// Builds the read-only progress view of the current lifecycle state.
fn snapshot(
    spec: &CampaignSpec,
    arms: &[ArmState],
    tick: u64,
    recorded: usize,
    stats: &RunStats,
) -> ProgressSnapshot {
    // Units parked in retry backoff: waiting with a strictly later due
    // tick (a unit due now is runnable, not backed off).
    let backoff_depth = arms
        .iter()
        .flat_map(|a| &a.slots)
        .filter(|s| matches!(s, Slot::Waiting { at_tick, .. } if *at_tick > tick))
        .count();
    let arms = spec
        .arms
        .iter()
        .zip(arms)
        .map(|(a_spec, a)| {
            let mut p = ArmProgress {
                name: a_spec.name.clone(),
                done: 0,
                skipped: 0,
                abandoned: 0,
                pending: 0,
                retries: a.retries,
                invocations: a.invocations,
                breaker: a.breaker.state(),
                tripped: a.breaker.tripped_permanently(),
            };
            for slot in &a.slots {
                match slot {
                    Slot::Terminal(TrialState::Done(_)) => p.done += 1,
                    Slot::Terminal(TrialState::Skipped(_)) => p.skipped += 1,
                    Slot::Terminal(TrialState::Abandoned { .. }) => p.abandoned += 1,
                    Slot::Terminal(TrialState::Pending) | Slot::Waiting { .. } => p.pending += 1,
                }
            }
            p
        })
        .collect();
    ProgressSnapshot {
        tick,
        recorded,
        total: spec.total_trials(),
        waves: stats.waves,
        backoff_depth,
        resumed: stats.resumed,
        resumed_units: stats.resumed_units,
        fsync_count: stats.fsync_count,
        fsync_nanos_total: stats.fsync_nanos_total,
        fsync_nanos_last: stats.fsync_nanos_last,
        arms,
    }
}

fn finish(
    outcome: CampaignOutcome,
    spec: &CampaignSpec,
    arms: Vec<ArmState>,
    ticks: u64,
    resumed: bool,
    recovered_torn_tail: bool,
) -> CampaignReport {
    let arms = spec
        .arms
        .iter()
        .zip(arms)
        .map(|(a_spec, a)| ArmReport {
            name: a_spec.name.clone(),
            trials: a
                .slots
                .into_iter()
                .map(|s| match s {
                    Slot::Terminal(t) => t,
                    Slot::Waiting { .. } => TrialState::Pending,
                })
                .collect(),
            invocations: a.invocations,
            retries: a.retries,
            backoff_ticks: a.backoff_ticks,
            breaker_trips: a.breaker.trips(),
            tripped: a.breaker.tripped_permanently(),
        })
        .collect();
    CampaignReport { outcome, arms, ticks, resumed, recovered_torn_tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{ArmSpec, BreakerConfig, InjectRetryable, RetryPolicy};
    use crn_sim::Counters;

    /// A synthetic unit runner: no engine, just a recognizable output per
    /// (arm, trial) — the runner's own semantics under test, not the sim.
    fn synth(unit: &Unit) -> Trial {
        Trial {
            seed: (unit.arm as u64) << 32 | unit.trial as u64,
            completed_at: Some(unit.attempt as u64 + 1),
            slots_run: 10,
            counters: Counters { slots: 10, ..Counters::default() },
        }
    }

    fn spec(arms: &[(&str, usize)]) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            arms: arms.iter().map(|&(n, t)| ArmSpec::new(n, t)).collect(),
            seed: 7,
            retry: RetryPolicy { max_attempts: 3, backoff_base: 1, backoff_cap: 4 },
            breaker: BreakerConfig { failure_threshold: 2, cooldown_ticks: 2, max_trips: 1 },
        }
    }

    #[test]
    fn all_done_no_faults() {
        let s = spec(&[("a", 3), ("b", 2)]);
        let report = run_campaign(
            &s,
            2,
            None,
            &FaultPlan::none(),
            || (),
            |(), u| ArmResult::Done { output: synth(u) },
        )
        .unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        assert_eq!(report.arms.len(), 2);
        assert_eq!(report.done_outputs(0).len(), 3);
        assert_eq!(report.done_outputs(1).len(), 2);
        assert_eq!(report.arms[0].retries, 0);
        assert!(!report.resumed);
    }

    #[test]
    fn transient_failure_retries_with_backoff_then_succeeds() {
        let s = spec(&[("flaky", 1)]);
        let fault = FaultPlan {
            kill_after_trials: None,
            inject_retryable: vec![InjectRetryable { arm: 0, trial: Some(0), attempts_below: 2 }],
        };
        let report =
            run_campaign(&s, 1, None, &fault, || (), |(), u| ArmResult::Done { output: synth(u) })
                .unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        let arm = &report.arms[0];
        assert_eq!(arm.retries, 2, "two injected failures");
        assert_eq!(arm.invocations, 3, "two failures + one success");
        // Backoff: after attempt 0 → 1 tick, after attempt 1 → 2 ticks.
        assert_eq!(arm.backoff_ticks, 3);
        match &arm.trials[0] {
            TrialState::Done(t) => assert_eq!(t.completed_at, Some(3), "succeeded on attempt 2"),
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(arm.breaker_trips, 1, "two consecutive failures hit the threshold");
        assert!(!arm.tripped, "one trip is within budget");
    }

    #[test]
    fn skip_is_terminal_and_not_retried() {
        let s = spec(&[("skippy", 2)]);
        let report = run_campaign(
            &s,
            1,
            None,
            &FaultPlan::none(),
            || (),
            |(), u| {
                if u.trial == 0 {
                    ArmResult::Skip { reason: "out of range".into() }
                } else {
                    ArmResult::Done { output: synth(u) }
                }
            },
        )
        .unwrap();
        assert_eq!(report.arms[0].trials[0], TrialState::Skipped("out of range".into()));
        assert!(report.arms[0].trials[1].output().is_some());
        assert_eq!(report.arms[0].invocations, 2);
    }

    #[test]
    fn continue_re_enqueues_with_resume_key() {
        let s = spec(&[("stateful", 1)]);
        let report = run_campaign(
            &s,
            1,
            None,
            &FaultPlan::none(),
            || (),
            |(), u| {
                // Count up through resume keys: 3 continues, then done.
                let k = u.resume.unwrap_or(0);
                if k < 3 {
                    ArmResult::Continue { progress: k as f64 / 3.0, resume_key: k + 1 }
                } else {
                    let mut out = synth(u);
                    out.slots_run = k; // prove the key round-tripped
                    ArmResult::Done { output: out }
                }
            },
        )
        .unwrap();
        let t = report.arms[0].trials[0].output().expect("completed");
        assert_eq!(t.slots_run, 3, "resume key chained through 3 continues");
        assert_eq!(report.arms[0].retries, 0, "continues are not failures");
    }

    #[test]
    fn persistent_failure_trips_breaker_and_does_not_stall_others() {
        let s = spec(&[("doomed", 4), ("fine", 3)]);
        let fault = FaultPlan {
            kill_after_trials: None,
            inject_retryable: vec![InjectRetryable {
                arm: 0,
                trial: None,
                attempts_below: u32::MAX,
            }],
        };
        let report =
            run_campaign(&s, 2, None, &fault, || (), |(), u| ArmResult::Done { output: synth(u) })
                .unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed, "campaign finishes regardless");
        let doomed = &report.arms[0];
        assert!(doomed.tripped, "persistently failing arm must trip");
        assert!(doomed.breaker_trips > 1);
        assert!(
            doomed.trials.iter().all(|t| matches!(t, TrialState::Abandoned { .. })),
            "every unit of the tripped arm is abandoned: {:?}",
            doomed.trials
        );
        let fine = &report.arms[1];
        assert_eq!(report.done_outputs(1).len(), 3, "healthy arm unaffected");
        assert_eq!(fine.retries, 0);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let s = spec(&[("a", 5), ("b", 4), ("c", 3)]);
        let fault = FaultPlan {
            kill_after_trials: None,
            inject_retryable: vec![
                InjectRetryable { arm: 1, trial: Some(0), attempts_below: 1 },
                InjectRetryable { arm: 2, trial: None, attempts_below: u32::MAX },
            ],
        };
        let run = |threads| {
            run_campaign(
                &s,
                threads,
                None,
                &fault,
                || (),
                |(), u| ArmResult::Done { output: synth(u) },
            )
            .unwrap()
        };
        let one = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), one, "{threads} threads diverge from 1");
        }
    }

    #[test]
    fn observer_sees_monotone_progress_and_does_not_change_results() {
        use std::sync::Mutex;

        struct Recorder(Mutex<Vec<crate::campaign::ProgressSnapshot>>);
        impl crate::campaign::CampaignObserver for Recorder {
            fn on_progress(&self, s: &crate::campaign::ProgressSnapshot) {
                self.0.lock().unwrap().push(s.clone());
            }
        }

        let s = spec(&[("a", 4), ("b", 3)]);
        let plain = run_campaign(
            &s,
            2,
            None,
            &FaultPlan::none(),
            || (),
            |(), u| ArmResult::Done { output: synth(u) },
        )
        .unwrap();

        let rec = Recorder(Mutex::new(Vec::new()));
        let observed = run_campaign_observed(
            &s,
            2,
            None,
            &FaultPlan::none(),
            &rec,
            || (),
            |(), u| ArmResult::Done { output: synth(u) },
        )
        .unwrap();
        assert_eq!(observed, plain, "observing must never change the report");

        let snaps = rec.0.into_inner().unwrap();
        assert!(snaps.len() >= 2, "entry snapshot plus at least one wave");
        assert_eq!(snaps[0].recorded, 0, "entry snapshot precedes any wave");
        assert!(
            snaps.windows(2).all(|w| w[0].recorded <= w[1].recorded),
            "recorded counter must be monotone across snapshots"
        );
        let last = snaps.last().unwrap();
        assert_eq!(last.recorded, s.total_trials());
        assert_eq!(last.arms[0].done, 4);
        assert_eq!(last.arms[1].done, 3);
    }

    #[test]
    fn cancel_stops_at_a_wave_boundary_and_resumes_later() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        // Cancels after the first wave's snapshot arrives.
        struct CancelAfterFirstWave {
            waves: AtomicUsize,
            cancel: AtomicBool,
        }
        impl crate::campaign::CampaignObserver for CancelAfterFirstWave {
            fn on_progress(&self, s: &crate::campaign::ProgressSnapshot) {
                // Snapshot 0 is the entry snapshot; any later one with
                // recorded units is a committed wave.
                if self.waves.fetch_add(1, Ordering::Relaxed) >= 1 && s.recorded > 0 {
                    self.cancel.store(true, Ordering::Relaxed);
                }
            }
            fn cancel_requested(&self) -> bool {
                self.cancel.load(Ordering::Relaxed)
            }
        }

        // Two waves minimum: trial 0 of each arm continues once.
        let s = spec(&[("a", 2), ("b", 2)]);
        let run_unit = |(): &mut (), u: &Unit| {
            if u.trial == 0 && u.resume.is_none() {
                ArmResult::Continue { progress: 0.5, resume_key: 1 }
            } else {
                ArmResult::Done { output: synth(u) }
            }
        };

        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!("crn-cancel-test-{}.crnj", std::process::id()));
            std::fs::remove_file(&p).ok();
            p
        };
        let obs =
            CancelAfterFirstWave { waves: AtomicUsize::new(0), cancel: AtomicBool::new(false) };
        let cancelled =
            run_campaign_observed(&s, 1, Some(&path), &FaultPlan::none(), &obs, || (), run_unit)
                .unwrap();
        let recorded = match cancelled.outcome {
            CampaignOutcome::Cancelled { recorded } => recorded,
            other => panic!("expected Cancelled, got {other:?}"),
        };
        assert!(recorded > 0 && recorded < s.total_trials(), "stopped mid-campaign");

        // The journal is a valid prefix: an unobserved rerun resumes and
        // matches a never-cancelled run exactly.
        let resumed =
            run_campaign(&s, 1, Some(&path), &FaultPlan::none(), || (), run_unit).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(resumed.resumed);
        let uninterrupted = run_campaign(&s, 1, None, &FaultPlan::none(), || (), run_unit).unwrap();
        assert_eq!(resumed.arms, uninterrupted.arms, "cancel+resume diverged");
    }

    #[test]
    fn kill_after_zero_records_nothing() {
        let s = spec(&[("a", 2)]);
        let report = run_campaign(
            &s,
            1,
            None,
            &FaultPlan::kill_after(1),
            || (),
            |(), u| ArmResult::Done { output: synth(u) },
        )
        .unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Killed { recorded: 1 });
        assert_eq!(report.done_outputs(0).len(), 1);
        assert_eq!(report.arms[0].trials[1], TrialState::Pending, "second unit never applied");
    }
}
