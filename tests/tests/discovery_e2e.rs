//! End-to-end neighbor discovery across scenario families: CSEEK must be
//! sound and complete on every topology/channel-model combination within
//! its fixed schedule, independent of local channel labels.

use crn_core::discovery::{outputs_complete, outputs_sound};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_integration::build;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Engine;

fn run_and_check(topology: Topology, channels: ChannelModel, seed: u64) {
    let (net, model) = build(topology.clone(), channels, seed);
    let sched = SeekParams::default().schedule(&model);
    let mut eng = Engine::new(&net, seed ^ 0x515, |ctx| CSeek::new(ctx.id, sched, false));
    let outcome = eng.run_to_completion(sched.total_slots());
    assert!(outcome.all_protocols_done, "{topology:?}: schedule must finish");
    let outputs = eng.into_outputs();
    assert!(outputs_sound(&net, &outputs), "{topology:?}: unsound discovery");
    assert!(outputs_complete(&net, &outputs), "{topology:?}: incomplete discovery");
}

#[test]
fn cseek_on_grid_with_shared_core() {
    run_and_check(
        Topology::Grid { rows: 4, cols: 4 },
        ChannelModel::SharedCore { c: 5, core: 2 },
        1,
    );
}

#[test]
fn cseek_on_star_with_identical_channels() {
    run_and_check(Topology::Star { leaves: 12 }, ChannelModel::Identical { c: 4 }, 2);
}

#[test]
fn cseek_on_cycle_with_group_overlay() {
    run_and_check(
        Topology::Cycle { n: 16 },
        ChannelModel::GroupOverlay { c: 7, k: 2, kmax: 5, groups: 4 },
        3,
    );
}

#[test]
fn cseek_on_caterpillar_with_crowded_split() {
    run_and_check(
        Topology::Star { leaves: 24 },
        ChannelModel::CrowdedSplit { c: 4, k: 2, hot: 1, k_hot: 1 },
        4,
    );
}

#[test]
fn cseek_on_random_geometric_emergent_overlap() {
    // Emergent neighbors: in range AND sharing >= 2 channels.
    let scenario = crn_workloads::Scenario::new(
        "geo",
        Topology::RandomGeometric { n: 40, radius: 0.3 },
        ChannelModel::RandomPool { c: 6, universe: 12 },
        5,
    )
    .with_prune(2);
    let built = scenario.build().unwrap();
    let sched = SeekParams::default().schedule(&built.model);
    let mut eng = Engine::new(&built.net, 55, |ctx| CSeek::new(ctx.id, sched, false));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    assert!(outputs_sound(&built.net, &outputs));
    assert!(outputs_complete(&built.net, &outputs));
}

#[test]
fn full_pipeline_is_deterministic() {
    let (net, model) =
        build(Topology::Cycle { n: 10 }, ChannelModel::SharedCore { c: 4, core: 2 }, 6);
    let sched = SeekParams::default().schedule(&model);
    let run = |seed: u64| {
        let mut eng = Engine::new(&net, seed, |ctx| CSeek::new(ctx.id, sched, false));
        eng.run_to_completion(sched.total_slots());
        (eng.counters(), eng.into_outputs())
    };
    let (c1, o1) = run(123);
    let (c2, o2) = run(123);
    assert_eq!(c1, c2);
    assert_eq!(o1, o2);
}

#[test]
fn discovery_time_improves_with_more_overlap() {
    // Same ring, k = 1 vs k = 4 out of c = 8: more shared channels must not
    // slow discovery down (Theorem 4: time ∝ c²/k).
    use crn_workloads::runner::{discovery_trials, summarize_trials};
    let mut means = Vec::new();
    for k in [1usize, 4] {
        let (net, model) =
            build(Topology::Cycle { n: 12 }, ChannelModel::SharedCore { c: 8, core: k }, 7);
        let sched = SeekParams::default().schedule(&model);
        let trials = discovery_trials(
            &net,
            |ctx| CSeek::new(ctx.id, sched, false),
            5,
            99,
            sched.total_slots(),
        );
        let (mean, frac) = summarize_trials(&trials);
        assert_eq!(frac, 1.0, "k={k} must complete");
        means.push(mean.unwrap());
    }
    assert!(means[1] < means[0], "k=4 ({}) should be faster than k=1 ({})", means[1], means[0]);
}
