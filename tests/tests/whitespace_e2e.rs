//! End-to-end white-space pipeline: geographic deployment with licensed
//! primary users → network model → CSEEK discovery → CGCAST broadcast.
//! This is the paper's §1 motivating use-case (1) run in full.

use crn_core::cgcast::CGCast;
use crn_core::discovery::{outputs_complete, outputs_sound};
use crn_core::exchange::Exchange;
use crn_core::params::{GcastParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::prune_edges_by_overlap;
use crn_sim::geo::{generate, WhitespaceConfig};
use crn_sim::graph::Graph;
use crn_sim::rng::stream_rng;
use crn_sim::{Engine, Network, NodeId};

fn whitespace_network(seed: u64) -> Option<Network> {
    let cfg = WhitespaceConfig {
        n: 30,
        radio_radius: 0.4,
        universe: 12,
        c: 5,
        primaries: 5,
        primary_radius: 0.25,
    };
    let mut rng = stream_rng(seed, 0);
    let dep = generate(&cfg, &mut rng).ok()?;
    let edges = prune_edges_by_overlap(&dep.edges, &dep.channel_sets, 2);
    // Only use connected instances (broadcast needs connectivity).
    let g = Graph::from_edges(cfg.n, &edges);
    if !g.is_connected() {
        return None;
    }
    let mut b = Network::builder(cfg.n);
    for (v, set) in dep.channel_sets.iter().enumerate() {
        b.set_channels(NodeId(v as u32), set.clone());
    }
    b.add_edges(edges.iter().map(|&(a, x)| (NodeId(a), NodeId(x))));
    b.build().ok()
}

fn first_connected_network() -> Network {
    (0..50u64)
        .find_map(whitespace_network)
        .expect("some seed yields a connected white-space deployment")
}

#[test]
fn whitespace_discovery_is_sound_and_complete() {
    let net = first_connected_network();
    let model = ModelInfo::from_stats(&net.stats());
    assert!(model.k >= 2, "pruning must enforce the overlap floor");
    let sched = SeekParams::default().schedule(&model);
    let mut eng = Engine::new(&net, 4242, |ctx| CSeek::new(ctx.id, sched, false));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    assert!(outputs_sound(&net, &outputs));
    assert!(outputs_complete(&net, &outputs));
}

#[test]
fn whitespace_broadcast_reaches_everyone() {
    let net = first_connected_network();
    let model = ModelInfo::from_stats(&net.stats());
    let d = net.stats().diameter.expect("connected by construction");
    let sched =
        GcastParams { dissemination_phases: d.max(1), ..Default::default() }.schedule(&model);
    let mut eng = Engine::new(&net, 777, |ctx| {
        CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xD15C))
    });
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    let informed = outputs.iter().filter(|o| o.is_informed()).count();
    assert_eq!(informed, net.len(), "alert must reach every device");
}

#[test]
fn whitespace_exchange_delivers_all_neighbor_payloads() {
    let net = first_connected_network();
    let model = ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&model);
    let mut eng =
        Engine::new(&net, 31337, |ctx| Exchange::new(ctx.id, sched, (ctx.id.0 as u64) * 7));
    eng.run_to_completion(sched.total_slots());
    for out in eng.into_outputs() {
        for w in net.neighbors(out.id) {
            assert_eq!(
                out.received.get(&w),
                Some(&(w.0 as u64 * 7)),
                "{} missing payload of neighbor {w}",
                out.id
            );
        }
    }
}
