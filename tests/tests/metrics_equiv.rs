//! Observability-invisibility differentials and metrics-primitive
//! properties.
//!
//! The engine's per-phase timers ([`Engine::set_phase_timing`]) promise to
//! be *observationally invisible*: enabling them may cost clock reads but
//! must never change a counter, a feedback trace, or an RNG stream. This
//! file enforces the promise the same way `engine_equiv.rs` enforces
//! resolver equivalence — twin engines, timers on vs off, stepped in
//! lockstep with counters compared after every slot and full traces
//! compared at the end, across all resolvers × thread counts {1, 2, 4} ×
//! pooled phase-1/phase-3 on and off, with and without spectrum dynamics.
//!
//! The second half is a proptest over the `crn_sim::metrics` histogram:
//! across arbitrary insert sequences, the per-bucket counts must always
//! sum to the sample count (no sample lost, none double-counted), every
//! sample must land in a bucket whose bounds contain it, and the sum must
//! be the wrapping sum of the inserts.

use crn_sim::channels::ChannelModel;
use crn_sim::engine::Resolver;
use crn_sim::metrics::{Histogram, HISTOGRAM_BUCKETS};
use crn_sim::topology::Topology;
use crn_sim::{
    Action, Engine, Feedback, LocalChannel, Network, Protocol, SlotCtx, SpectrumDynamics,
};
use proptest::prelude::*;
use rand::Rng;

/// Owned snapshot of one slot's feedback, so whole traces can be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    Sent,
    Heard(u64),
    Silence,
    Slept,
}

/// Randomized traffic recording every feedback — the `engine_equiv.rs`
/// chatter shape, scalar hooks only (the batched-vs-scalar differential
/// lives there; here both twins use the same hooks and only the timer
/// flag differs).
struct Chatter {
    c: u16,
    id: u32,
    trace: Vec<Obs>,
}

impl Protocol for Chatter {
    type Message = u64;
    type Output = Vec<Obs>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u64> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(0.5) {
            Action::Broadcast { channel, message: ((self.id as u64) << 32) | ctx.slot.0 }
        } else if ctx.rng.gen_bool(0.9) {
            Action::Listen { channel }
        } else {
            Action::Sleep
        }
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        self.trace.push(match fb {
            Feedback::Sent => Obs::Sent,
            Feedback::Heard(m) => Obs::Heard(*m),
            Feedback::Silence => Obs::Silence,
            Feedback::Slept => Obs::Slept,
        });
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn into_output(self) -> Vec<Obs> {
        self.trace
    }
}

/// Builds one engine of the twin pair. `timed` is the only difference.
fn build_engine<'a>(
    net: &'a Network,
    resolver: Resolver,
    c: u16,
    p1_min: usize,
    p3_min: usize,
    spectrum: bool,
    timed: bool,
) -> Engine<'a, Chatter> {
    let mut eng = Engine::with_resolver(net, 99, resolver, |ctx| Chatter {
        c,
        id: ctx.id.0,
        trace: Vec::new(),
    });
    eng.set_phase1_pool_min_nodes(p1_min);
    eng.set_phase3_pool_min_nodes(p3_min);
    if spectrum {
        eng.set_spectrum(SpectrumDynamics::MarkovOnOff { p_busy: 0.2, p_free: 0.3 });
    }
    eng.set_phase_timing(timed);
    eng
}

/// The core differential: timers-on vs timers-off twins in lockstep.
/// Counters must agree after *every* slot (a divergence is caught at the
/// slot it happens, not at the end), traces must agree bit-for-bit at the
/// end, and the timed engine must actually have measured something.
fn assert_timing_invisible(
    net: &Network,
    resolver: Resolver,
    c: u16,
    p1_min: usize,
    p3_min: usize,
    spectrum: bool,
    slots: u64,
) {
    let mut plain = build_engine(net, resolver, c, p1_min, p3_min, spectrum, false);
    let mut timed = build_engine(net, resolver, c, p1_min, p3_min, spectrum, true);
    for slot in 0..slots {
        plain.step();
        timed.step();
        assert_eq!(
            plain.counters(),
            timed.counters(),
            "{resolver:?} p1_min={p1_min} p3_min={p3_min} spectrum={spectrum}: \
             counters diverge at slot {slot}"
        );
    }
    assert_eq!(plain.phase_timings(), None, "timing off must record nothing");
    let pt = timed.phase_timings().expect("timing on must record");
    assert_eq!(pt.slots, slots, "every stepped slot must be measured");
    assert!(pt.total_ns() > 0, "a {slots}-slot run cannot take zero time");
    let plain_traces = plain.into_outputs();
    let timed_traces = timed.into_outputs();
    assert_eq!(
        plain_traces, timed_traces,
        "{resolver:?} p1_min={p1_min} p3_min={p3_min} spectrum={spectrum}: traces diverge"
    );
    assert!(
        plain_traces.iter().any(|t| t.iter().any(|o| matches!(o, Obs::Heard(_)))),
        "scenario never delivers — not probing anything"
    );
}

/// All resolvers × sharded thread counts {1, 2, 4} × pooled phase-1 and
/// phase-3 forced on/off × spectrum on/off. Pool thresholds only matter on
/// sharded engines, so the sequential resolvers run the default config.
#[test]
fn phase_timers_are_observationally_invisible() {
    let n = 120usize;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = Network::generate(&topology, &channels, 23).expect("network must build");
    let c = net.channels_per_node() as u16;
    let slots = 48;

    let sequential =
        [Resolver::Naive, Resolver::Auto, Resolver::BroadcasterCentric, Resolver::ListenerCentric];
    for spectrum in [false, true] {
        for resolver in sequential {
            assert_timing_invisible(&net, resolver, c, usize::MAX, usize::MAX, spectrum, slots);
        }
        for threads in [1usize, 2, 4] {
            let resolver = Resolver::ParallelSharded { threads };
            // (phase-1 pooled, phase-3 pooled): off/off, on/off, on/on.
            for (p1_min, p3_min) in [(usize::MAX, usize::MAX), (0, usize::MAX), (0, 0)] {
                assert_timing_invisible(&net, resolver, c, p1_min, p3_min, spectrum, slots);
            }
        }
    }
}

/// Toggling timers mid-run must also be invisible, and re-enabling must
/// zero the accumulators rather than resume them.
#[test]
fn toggling_timers_mid_run_is_invisible_and_reenabling_zeroes() {
    let n = 60usize;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = Network::generate(&topology, &channels, 5).expect("network must build");
    let c = net.channels_per_node() as u16;

    let mut plain = build_engine(&net, Resolver::Auto, c, usize::MAX, usize::MAX, false, false);
    let mut toggled = build_engine(&net, Resolver::Auto, c, usize::MAX, usize::MAX, false, false);
    for phase in 0..4u64 {
        // Timers on for phases 1 and 3, off for 0 and 2.
        toggled.set_phase_timing(phase % 2 == 1);
        for _ in 0..16 {
            plain.step();
            toggled.step();
        }
        assert_eq!(plain.counters(), toggled.counters(), "diverged in toggle phase {phase}");
        if phase % 2 == 1 {
            let pt = toggled.phase_timings().expect("enabled this phase");
            assert_eq!(pt.slots, 16, "re-enabling must start from zero");
        } else {
            assert_eq!(toggled.phase_timings(), None);
        }
    }
    assert_eq!(plain.into_outputs(), toggled.into_outputs());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Across arbitrary insert sequences: bucket counts sum to the sample
    /// count, `sum()` is the wrapping sum of inserts, and each bucket's
    /// cumulative count never exceeds the total.
    #[test]
    fn histogram_buckets_always_sum_to_sample_count(
        values in proptest::collection::vec(any::<u64>(), 0..200),
        small in proptest::collection::vec(0u64..1024, 0..200),
    ) {
        let h = Histogram::new();
        let mut expected_sum = 0u64;
        for &v in values.iter().chain(&small) {
            h.observe(v);
            expected_sum = expected_sum.wrapping_add(v);
        }
        let n = (values.len() + small.len()) as u64;
        let buckets = h.bucket_counts();
        prop_assert_eq!(buckets.len(), HISTOGRAM_BUCKETS + 1);
        prop_assert_eq!(buckets.iter().sum::<u64>(), n);
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.sum(), expected_sum);
    }

    /// Every observed value lands in a bucket whose bound interval
    /// contains it: `upper_bound(i-1) < v <= upper_bound(i)` (overflow
    /// bucket for values beyond the last bound).
    #[test]
    fn histogram_bucket_placement_brackets_the_value(v in any::<u64>()) {
        let h = Histogram::new();
        h.observe(v);
        let buckets = h.bucket_counts();
        let idx = buckets.iter().position(|&n| n == 1).expect("exactly one sample");
        match Histogram::upper_bound(idx) {
            Some(bound) => {
                prop_assert!(v <= bound, "v={v} above its bucket bound {bound}");
                if idx > 0 {
                    let lower = Histogram::upper_bound(idx - 1).unwrap();
                    prop_assert!(v > lower, "v={v} not above the previous bound {lower}");
                }
            }
            None => {
                // Overflow bucket: beyond the largest finite bound.
                let last = Histogram::upper_bound(HISTOGRAM_BUCKETS - 1).unwrap();
                prop_assert!(v > last, "v={v} in overflow despite fitting under {last}");
            }
        }
    }
}
