//! Differential equivalence tests for the engine's slot resolvers.
//!
//! The optimized resolution strategies (broadcaster-centric CSR sweep,
//! listener-centric word intersection, the Auto heuristic that mixes them
//! per channel, and the channel-sharded parallel resolver — persistent
//! parked worker pool — at every thread count) must be *observationally
//! identical* to the naive reference resolver — bit-for-bit equal
//! counters, per-slot feedback traces, and outputs — on every network,
//! seed, and action mix. This file drives randomized networks through all
//! resolvers side by side, including a proptest property over
//! topology/channel-count/seed space, slot-by-slot lockstep comparison
//! across repeated `step` calls on one engine instance, and engine reuse
//! via [`Engine::reset`] (pool state must not leak between runs).
//!
//! The same standard applies to the *batched act and feedback pipelines*:
//! a protocol's [`Protocol::act_batch`] / [`Protocol::feedback_batch`]
//! overrides (buffered bulk draws) must be draw-for-draw identical to the
//! scalar [`Protocol::act`] / [`Protocol::feedback`], and the engine's
//! pooled phase-1 collection (node-range chunks on the worker pool, merged
//! by prefix-sum) and pooled phase-3 delivery (same chunking, per-chunk
//! counter deltas merged in chunk order) must be bit-identical to their
//! sequential forms — all enforced here by running a batched protocol
//! against a scalar-only twin across thread counts with the pooled stages
//! forced on and off, under static and dynamic spectrum alike.

use crn_sim::channels::ChannelModel;
use crn_sim::engine::Resolver;
use crn_sim::topology::Topology;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Counters, Engine, Feedback,
    FeedbackBatch, GlobalChannel, LocalChannel, Network, NodeCtx, Protocol, SlotCtx,
    SpectrumDynamics,
};
use rand::{Rng, RngCore};

/// Owned snapshot of one slot's feedback, so whole traces can be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    Sent,
    Heard(u64),
    Silence,
    Slept,
}

/// Randomized traffic: each node picks a random channel and a random role
/// each slot, with a per-scenario broadcast probability; records every
/// feedback it observes.
struct Chatter {
    c: u16,
    p_bcast: f64,
    id: u32,
    trace: Vec<Obs>,
}

impl Chatter {
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<u64> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(self.p_bcast) {
            // Message encodes (sender, slot) so a delivery from the wrong
            // broadcaster or slot can never compare equal.
            Action::Broadcast { channel, message: ((self.id as u64) << 32) | ctx.slot.0 }
        } else if ctx.rng.gen_bool(0.9) {
            Action::Listen { channel }
        } else {
            Action::Sleep
        }
    }

    fn record(&mut self, fb: Feedback<'_, u64>) {
        self.trace.push(match fb {
            Feedback::Sent => Obs::Sent,
            Feedback::Heard(m) => Obs::Heard(*m),
            Feedback::Silence => Obs::Silence,
            Feedback::Slept => Obs::Slept,
        });
    }
}

impl Protocol for Chatter {
    type Message = u64;
    type Output = Vec<Obs>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u64> {
        self.act_any(ctx)
    }

    /// Batched act with buffered draws: channel word + role word are
    /// guaranteed every slot (the listen/sleep coin is data-dependent and
    /// falls through to the raw stream). Must be draw-for-draw identical
    /// to the scalar path — that is exactly what the differentials below
    /// check against [`ScalarChatter`].
    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<u64>>) {
        act_batch_buffered(batch, ctx, out, |_| 2, |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        self.record(fb);
    }

    /// Batched feedback: the recording body never draws, so reserve 0 is
    /// exact. Every differential in this file that pits [`Chatter`]
    /// against [`ScalarChatter`] therefore also proves the batched
    /// delivery path (sequential and pooled) against scalar delegation.
    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, u64>) {
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, _sctx, f| p.record(f));
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn into_output(self) -> Vec<Obs> {
        self.trace
    }
}

/// [`Chatter`]'s scalar-only twin: byte-for-byte the same state machine,
/// but *without* the `act_batch` / `feedback_batch` overrides, so the
/// engine drives it through the default per-node delegation on both batch
/// hooks. Any divergence between the two is a bug in the batched pipeline
/// (buffered draws, pooled collection, or pooled delivery).
struct ScalarChatter(Chatter);

impl Protocol for ScalarChatter {
    type Message = u64;
    type Output = Vec<Obs>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u64> {
        self.0.act_any(ctx)
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        self.0.record(fb);
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn into_output(self) -> Vec<Obs> {
        self.0.trace
    }
}

fn build_network(topology: &Topology, channels: &ChannelModel, seed: u64) -> Network {
    Network::generate(topology, channels, seed).expect("scenario network must build")
}

fn run(
    net: &Network,
    resolver: Resolver,
    seed: u64,
    c: u16,
    p_bcast: f64,
    slots: u64,
) -> (Counters, Vec<Vec<Obs>>) {
    let mut eng = Engine::with_resolver(net, seed, resolver, |ctx| Chatter {
        c,
        p_bcast,
        id: ctx.id.0,
        trace: Vec::new(),
    });
    eng.run_to_completion(slots);
    (eng.counters(), eng.into_outputs())
}

/// Every optimized resolver, including the sharded one at thread counts
/// {1, 2, 4, 8}. Sequential modes must match `Naive` bit-for-bit; the
/// sharded mode must do so at *every* thread count.
const OPTIMIZED_RESOLVERS: [Resolver; 7] = [
    Resolver::Auto,
    Resolver::BroadcasterCentric,
    Resolver::ListenerCentric,
    Resolver::ParallelSharded { threads: 1 },
    Resolver::ParallelSharded { threads: 2 },
    Resolver::ParallelSharded { threads: 4 },
    Resolver::ParallelSharded { threads: 8 },
];

/// The scenario matrix: all resolvers over randomized topologies, channel
/// assignments, broadcast densities, and seeds.
#[test]
fn all_resolvers_agree_on_randomized_networks() {
    let scenarios: Vec<(Topology, ChannelModel, f64)> = vec![
        // Dense hub: the broadcaster-centric regime.
        (Topology::Star { leaves: 40 }, ChannelModel::Identical { c: 2 }, 0.7),
        // Everyone adjacent, few channels: maximal per-channel crowding.
        (Topology::Complete { n: 24 }, ChannelModel::Identical { c: 3 }, 0.5),
        // Sparse ring with private channels: the listener-centric regime.
        (Topology::Cycle { n: 30 }, ChannelModel::SharedCore { c: 4, core: 2 }, 0.3),
        // Geometric radio topology, mixed overlaps.
        (
            Topology::RandomGeometric { n: 60, radius: 0.35 },
            ChannelModel::SharedCore { c: 3, core: 1 },
            0.5,
        ),
        // Grid with group structure.
        (
            Topology::Grid { rows: 6, cols: 6 },
            ChannelModel::GroupOverlay { c: 4, k: 1, kmax: 2, groups: 3 },
            0.4,
        ),
    ];

    for (si, (topology, channels, p_bcast)) in scenarios.into_iter().enumerate() {
        for seed in [3u64, 17, 91] {
            let net = build_network(&topology, &channels, seed.wrapping_mul(7919) + si as u64);
            let c = net.channels_per_node() as u16;
            let slots = 64;
            let (ref_counters, ref_traces) = run(&net, Resolver::Naive, seed, c, p_bcast, slots);
            assert!(
                ref_counters.deliveries > 0,
                "scenario {si} seed {seed} never delivers — not probing anything"
            );
            for resolver in OPTIMIZED_RESOLVERS {
                let (counters, traces) = run(&net, resolver, seed, c, p_bcast, slots);
                assert_eq!(
                    counters, ref_counters,
                    "scenario {si} seed {seed}: {resolver:?} counters diverge from Naive"
                );
                assert_eq!(
                    traces, ref_traces,
                    "scenario {si} seed {seed}: {resolver:?} feedback traces diverge from Naive"
                );
            }
        }
    }
}

/// Mid-run resolver switches must not perturb the execution: the stream of
/// observations is a function of (network, seed) only.
#[test]
fn switching_resolvers_mid_run_changes_nothing() {
    let net = build_network(
        &Topology::RandomGeometric { n: 50, radius: 0.4 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        1234,
    );
    let c = net.channels_per_node() as u16;

    let (ref_counters, ref_traces) = run(&net, Resolver::Naive, 5, c, 0.5, 96);

    let mut eng = Engine::with_resolver(&net, 5, Resolver::Naive, |ctx| Chatter {
        c,
        p_bcast: 0.5,
        id: ctx.id.0,
        trace: Vec::new(),
    });
    let rotation = [
        Resolver::BroadcasterCentric,
        Resolver::ListenerCentric,
        Resolver::Auto,
        Resolver::ParallelSharded { threads: 3 },
        Resolver::Naive,
        Resolver::ParallelSharded { threads: 2 },
    ];
    for i in 0..96 {
        eng.set_resolver(rotation[i % rotation.len()]);
        eng.step();
    }
    assert_eq!(eng.counters(), ref_counters);
    assert_eq!(eng.into_outputs(), ref_traces);
}

/// Slot-by-slot lockstep differential across repeated `step` calls on the
/// *same* engine instance: the pooled sharded engine at threads {1, 2, 4,
/// 8} must agree with a naive-resolver engine after **every** slot, not
/// just at the end of a run — so a divergence introduced by pool state
/// carried between slots (stale shard buffers, a missed wake, a stale
/// generation) is pinned to the exact slot where it appears.
#[test]
fn pooled_engine_stays_in_lockstep_with_naive_across_steps() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        77,
    );
    let c = net.channels_per_node() as u16;
    let make = |ctx: crn_sim::NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };

    for threads in [1usize, 2, 4, 8] {
        let mut reference = Engine::with_resolver(&net, 21, Resolver::Naive, make);
        let mut pooled =
            Engine::with_resolver(&net, 21, Resolver::ParallelSharded { threads }, make);
        for slot in 0..72u64 {
            reference.step();
            pooled.step();
            assert_eq!(
                pooled.counters(),
                reference.counters(),
                "threads={threads}: counters diverge after slot {slot}"
            );
        }
        let (mut ref_traces, mut pooled_traces) = (Vec::new(), Vec::new());
        reference.for_each_protocol(|_, p| ref_traces.push(p.trace.clone()));
        pooled.for_each_protocol(|_, p| pooled_traces.push(p.trace.clone()));
        assert_eq!(pooled_traces, ref_traces, "threads={threads}: feedback traces diverge");
    }
}

/// Batch-vs-scalar lockstep differential: a batched protocol (buffered
/// bulk draws) on a sharded engine — with pooled phase-1 collection forced
/// **on** and forced **off** — must agree with a scalar-only twin on a
/// naive sequential engine after **every** slot, at thread counts
/// {1, 2, 4, 8}. This pins any divergence (an over-reserved word buffer, a
/// mis-merged bucket, a chunk boundary error) to the exact slot where it
/// first appears.
#[test]
fn batched_pipeline_stays_in_lockstep_with_scalar() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        77,
    );
    let c = net.channels_per_node() as u16;
    let chatter = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };

    for threads in [1usize, 2, 4, 8] {
        // Pooled phase-1 forced on (threshold 0) and forced off (MAX); at
        // threads = 1 the engine must ignore the force-on and stay
        // sequential.
        for phase1_min in [0usize, usize::MAX] {
            let mut reference =
                Engine::with_resolver(&net, 21, Resolver::Naive, |ctx| ScalarChatter(chatter(ctx)));
            let mut batched =
                Engine::with_resolver(&net, 21, Resolver::ParallelSharded { threads }, chatter);
            batched.set_phase1_pool_min_nodes(phase1_min);
            for slot in 0..72u64 {
                reference.step();
                batched.step();
                assert_eq!(
                    batched.counters(),
                    reference.counters(),
                    "threads={threads} phase1_min={phase1_min}: counters diverge after slot {slot}"
                );
            }
            let (mut ref_traces, mut batched_traces) = (Vec::new(), Vec::new());
            reference.for_each_protocol(|_, p| ref_traces.push(p.0.trace.clone()));
            batched.for_each_protocol(|_, p| batched_traces.push(p.trace.clone()));
            assert_eq!(
                batched_traces, ref_traces,
                "threads={threads} phase1_min={phase1_min}: feedback traces diverge"
            );
        }
    }
}

/// Phase-3 twin differential: the batched feedback path — sequential
/// *and* pooled delivery (threshold forced to 0 and to MAX) — must agree
/// with the scalar-delegation twin on a naive sequential engine after
/// **every** slot, at thread counts {1, 2, 4, 8}. A divergence here is a
/// delivery bug (a mis-decoded outcome word, a counter delta merged out of
/// order, a chunk handed the wrong RNG lane), pinned to the exact slot
/// where it first appears.
#[test]
fn batched_feedback_stays_in_lockstep_with_scalar() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        303,
    );
    let c = net.channels_per_node() as u16;
    let chatter = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };

    for threads in [1usize, 2, 4, 8] {
        // Pooled delivery forced on (threshold 0) and forced off (MAX); at
        // threads = 1 the engine must ignore the force-on and deliver
        // sequentially.
        for phase3_min in [0usize, usize::MAX] {
            let mut reference =
                Engine::with_resolver(&net, 13, Resolver::Naive, |ctx| ScalarChatter(chatter(ctx)));
            let mut batched =
                Engine::with_resolver(&net, 13, Resolver::ParallelSharded { threads }, chatter);
            batched.set_phase3_pool_min_nodes(phase3_min);
            for slot in 0..72u64 {
                reference.step();
                batched.step();
                assert_eq!(
                    batched.counters(),
                    reference.counters(),
                    "threads={threads} phase3_min={phase3_min}: counters diverge after slot {slot}"
                );
            }
            let (mut ref_traces, mut batched_traces) = (Vec::new(), Vec::new());
            reference.for_each_protocol(|_, p| ref_traces.push(p.0.trace.clone()));
            batched.for_each_protocol(|_, p| batched_traces.push(p.trace.clone()));
            assert_eq!(
                batched_traces, ref_traces,
                "threads={threads} phase3_min={phase3_min}: feedback traces diverge"
            );
        }
    }
}

/// Dynamic-spectrum delivery differential: with a primary-user process
/// installed, pooled phase-3 delivery must fold the `OC_PU_BUSY` outcome
/// into **both** `collisions` and `pu_blocked_listens` exactly as the
/// scalar path does, per slot, across thread counts and with pooled
/// phase-1 collection also engaged. The final assertion that the PU
/// actually bit guards the test against silently probing nothing.
#[test]
fn dynamic_spectrum_pu_folding_stays_exact_under_pooled_delivery() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        404,
    );
    let c = net.channels_per_node() as u16;
    let chatter = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };
    let dyn_ = SpectrumDynamics::MarkovOnOff { p_busy: 0.25, p_free: 0.25 };

    let mut reference =
        Engine::with_resolver(&net, 33, Resolver::Naive, |ctx| ScalarChatter(chatter(ctx)));
    reference.set_spectrum(dyn_.clone());

    let mut others: Vec<(usize, usize, Engine<'_, Chatter>)> = Vec::new();
    for threads in [2usize, 4, 8] {
        for phase3_min in [0usize, usize::MAX] {
            let mut eng =
                Engine::with_resolver(&net, 33, Resolver::ParallelSharded { threads }, chatter);
            eng.set_phase1_pool_min_nodes(0);
            eng.set_phase3_pool_min_nodes(phase3_min);
            eng.set_spectrum(dyn_.clone());
            others.push((threads, phase3_min, eng));
        }
    }

    for slot in 0..72u64 {
        reference.step();
        for (threads, phase3_min, eng) in &mut others {
            eng.step();
            assert_eq!(
                eng.counters(),
                reference.counters(),
                "threads={threads} phase3_min={phase3_min}: PU counter folding diverges after \
                 slot {slot}"
            );
        }
    }
    let counters = reference.counters();
    assert!(counters.deliveries > 0, "scenario must still deliver");
    assert!(counters.pu_blocked_listens > 0, "the PU must actually bite");

    let mut ref_traces = Vec::new();
    reference.for_each_protocol(|_, p| ref_traces.push(p.0.trace.clone()));
    for (threads, phase3_min, eng) in &mut others {
        let mut traces = Vec::new();
        eng.for_each_protocol(|_, p| traces.push(p.trace.clone()));
        assert_eq!(
            traces, ref_traces,
            "threads={threads} phase3_min={phase3_min}: feedback traces diverge"
        );
    }
}

/// Pooled delivery composes with engine reuse: the per-chunk delta scratch
/// allocated on first pooled delivery survives [`Engine::reset`] by design
/// and must be observationally invisible — one engine running pooled
/// delivery twice back-to-back (at *different* thread counts, so the
/// scratch is re-chunked) reproduces the naive scalar reference. n = 29 is
/// prime, so both thread counts produce a ragged final chunk.
#[test]
fn pooled_delivery_survives_reset_and_odd_chunks() {
    let net = build_network(
        &Topology::RandomGeometric { n: 29, radius: 0.45 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        902,
    );
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast: 0.4, id: ctx.id.0, trace: Vec::new() };
    let (ref_counters, ref_traces) = run(&net, Resolver::Naive, 8, c, 0.4, 64);

    let mut eng = Engine::with_resolver(&net, 8, Resolver::ParallelSharded { threads: 3 }, make);
    eng.set_phase1_pool_min_nodes(0);
    eng.set_phase3_pool_min_nodes(0);
    eng.run_to_completion(64);
    assert_eq!(eng.counters(), ref_counters, "first pooled-delivery run diverges");

    // Reset and rerun with a different thread count: the delivery scratch
    // from the first run must be re-sliced, not trusted.
    eng.reset(8, make);
    eng.set_resolver(Resolver::ParallelSharded { threads: 7 });
    eng.run_to_completion(64);
    assert_eq!(eng.counters(), ref_counters, "post-reset pooled-delivery run diverges");
    let traces: Vec<Vec<Obs>> = eng.into_outputs();
    assert_eq!(traces, ref_traces, "post-reset pooled-delivery traces diverge");
}

/// Pooled phase-1 collection composes with everything else the engine
/// does: resolver switching mid-run, engine reuse via reset, and odd
/// chunking (thread counts that don't divide n).
#[test]
fn pooled_collection_survives_reset_and_odd_chunks() {
    // n = 29 is prime: every thread count in the rotation produces a
    // ragged final chunk.
    let net = build_network(
        &Topology::RandomGeometric { n: 29, radius: 0.45 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        901,
    );
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast: 0.4, id: ctx.id.0, trace: Vec::new() };
    let (ref_counters, ref_traces) = run(&net, Resolver::Naive, 8, c, 0.4, 64);

    let mut eng = Engine::with_resolver(&net, 8, Resolver::ParallelSharded { threads: 3 }, make);
    eng.set_phase1_pool_min_nodes(0);
    eng.run_to_completion(64);
    assert_eq!(eng.counters(), ref_counters, "first pooled-collection run diverges");

    // Reset and rerun with a different thread count: shard state, local
    // buckets, and the pool must all be observationally invisible.
    eng.reset(8, make);
    eng.set_resolver(Resolver::ParallelSharded { threads: 7 });
    eng.run_to_completion(64);
    assert_eq!(eng.counters(), ref_counters, "post-reset pooled run diverges");
    let traces: Vec<Vec<Obs>> = eng.into_outputs();
    assert_eq!(traces, ref_traces, "post-reset pooled traces diverge");
}

/// Engine-reuse regression: one engine, two full executions back-to-back
/// via [`Engine::reset`], must reproduce what two *fresh* engines produce
/// — guarding against pool or scratch state leaking from the first run
/// into the second (the persistent worker pool, shard buffers, and epoch
/// stamps all survive a reset by design and must be observationally
/// invisible).
#[test]
fn engine_reuse_via_reset_matches_fresh_engines() {
    let net = build_network(
        &Topology::RandomGeometric { n: 40, radius: 0.4 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        4242,
    );
    let c = net.channels_per_node() as u16;
    let make = |ctx: crn_sim::NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };
    let slots = 64;

    for resolver in [Resolver::Auto, Resolver::ParallelSharded { threads: 4 }] {
        // Fresh-engine ground truth for both seeds.
        let (fresh1_counters, fresh1_traces) = run(&net, resolver, 9, c, 0.5, slots);
        let (fresh2_counters, fresh2_traces) = run(&net, resolver, 10, c, 0.5, slots);
        assert_ne!(fresh1_traces, fresh2_traces, "seeds must differ for the test to probe");

        // One engine, two executions back-to-back.
        let mut eng = Engine::with_resolver(&net, 9, resolver, make);
        eng.run_to_completion(slots);
        assert_eq!(eng.counters(), fresh1_counters, "{resolver:?}: first run counters");
        let mut traces1 = Vec::new();
        eng.for_each_protocol(|_, p| traces1.push(p.trace.clone()));
        assert_eq!(traces1, fresh1_traces, "{resolver:?}: first run traces");

        eng.reset(10, make);
        assert_eq!(eng.slot(), 0, "reset rewinds the slot counter");
        assert_eq!(eng.counters(), crn_sim::Counters::default(), "reset clears counters");
        eng.run_to_completion(slots);
        assert_eq!(
            eng.counters(),
            fresh2_counters,
            "{resolver:?}: reused engine diverges from a fresh engine"
        );
        let traces2: Vec<Vec<Obs>> = eng.into_outputs();
        assert_eq!(
            traces2, fresh2_traces,
            "{resolver:?}: reused engine's traces diverge from a fresh engine"
        );
    }
}

/// The spectrum-dynamics differential: with a primary-user process
/// installed, every resolver at every thread count — pooled phase-1
/// collection forced on and off — must stay in slot-by-slot lockstep with
/// the naive sequential engine running the *same* dynamics. The busy mask
/// is computed once per slot from per-(slot, channel)-keyed streams, so
/// any divergence here is a masking bug (a shard reading a stale mask, a
/// busy channel resolved anyway, a miscounted PU counter), pinned to the
/// slot where it first appears.
#[test]
fn dynamic_spectrum_stays_in_lockstep_across_resolvers() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        77,
    );
    let c = net.channels_per_node() as u16;
    let chatter = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };

    let dynamics = [
        SpectrumDynamics::MarkovOnOff { p_busy: 0.2, p_free: 0.3 },
        SpectrumDynamics::PoissonBursts { rate: 0.1, mean_len: 3.0 },
        SpectrumDynamics::TraceReplay(vec![
            vec![GlobalChannel(0)],
            vec![],
            vec![GlobalChannel(1), GlobalChannel(0)],
            vec![],
        ]),
    ];

    for dyn_ in dynamics {
        let mut reference = Engine::with_resolver(&net, 21, Resolver::Naive, chatter);
        reference.set_spectrum(dyn_.clone());

        let mut others: Vec<(Resolver, usize, Engine<'_, Chatter>)> = Vec::new();
        for resolver in OPTIMIZED_RESOLVERS {
            for phase1_min in [0usize, usize::MAX] {
                let mut eng = Engine::with_resolver(&net, 21, resolver, chatter);
                eng.set_phase1_pool_min_nodes(phase1_min);
                eng.set_spectrum(dyn_.clone());
                others.push((resolver, phase1_min, eng));
            }
        }

        for slot in 0..72u64 {
            reference.step();
            for (resolver, phase1_min, eng) in &mut others {
                eng.step();
                assert_eq!(
                    eng.counters(),
                    reference.counters(),
                    "{dyn_:?} {resolver:?} phase1_min={phase1_min}: counters diverge after \
                     slot {slot}"
                );
            }
        }
        let counters = reference.counters();
        assert!(counters.deliveries > 0, "{dyn_:?}: scenario must still deliver");
        assert!(counters.pu_blocked_listens > 0, "{dyn_:?}: the PU must actually bite");

        let mut ref_traces = Vec::new();
        reference.for_each_protocol(|_, p| ref_traces.push(p.trace.clone()));
        for (resolver, phase1_min, eng) in &mut others {
            let mut traces = Vec::new();
            eng.for_each_protocol(|_, p| traces.push(p.trace.clone()));
            assert_eq!(
                traces, ref_traces,
                "{dyn_:?} {resolver:?} phase1_min={phase1_min}: feedback traces diverge"
            );
        }
    }
}

/// `SpectrumDynamics::Static` must reproduce today's spectrum-free results
/// exactly — same counters (all PU counters zero) and same traces as an
/// engine that never heard of the spectrum layer.
#[test]
fn static_dynamics_reproduce_spectrum_free_results() {
    let net = build_network(
        &Topology::RandomGeometric { n: 40, radius: 0.4 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        4242,
    );
    let c = net.channels_per_node() as u16;
    let (ref_counters, ref_traces) = run(&net, Resolver::Auto, 9, c, 0.5, 64);
    assert_eq!(ref_counters.pu_blocked_listens, 0);

    let mut eng = Engine::with_resolver(&net, 9, Resolver::Auto, |ctx| Chatter {
        c,
        p_bcast: 0.5,
        id: ctx.id.0,
        trace: Vec::new(),
    });
    eng.set_spectrum(SpectrumDynamics::Static);
    eng.run_to_completion(64);
    assert_eq!(eng.counters(), ref_counters);
    assert_eq!(eng.into_outputs(), ref_traces);
}

/// Spectrum state must be reset-invisible: one engine running dynamics
/// twice via [`Engine::reset`] reproduces two fresh engines (the PU draws
/// are keyed by (seed, slot, channel), not by process history).
#[test]
fn spectrum_survives_engine_reset() {
    let net = build_network(
        &Topology::ErdosRenyi { n: 32, p: 0.2 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        55,
    );
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };
    let dyn_ = SpectrumDynamics::MarkovOnOff { p_busy: 0.25, p_free: 0.25 };
    let slots = 64;

    let fresh = |seed: u64| {
        let mut eng = Engine::with_resolver(&net, seed, Resolver::sharded(4), make);
        eng.set_spectrum(dyn_.clone());
        eng.run_to_completion(slots);
        (eng.counters(), eng.into_outputs())
    };
    let (fresh1, _) = fresh(9);
    let (fresh2, traces2) = fresh(10);
    assert!(fresh1.pu_blocked_listens > 0, "scenario must exercise the mask");

    let mut eng = Engine::with_resolver(&net, 9, Resolver::sharded(4), make);
    eng.set_spectrum(dyn_.clone());
    eng.run_to_completion(slots);
    assert_eq!(eng.counters(), fresh1, "first run");
    eng.reset(10, make);
    eng.run_to_completion(slots);
    assert_eq!(eng.counters(), fresh2, "reused engine diverges from fresh");
    assert_eq!(eng.into_outputs(), traces2, "reused traces diverge from fresh");
}

/// Property over topology/channel-count/seed space: the scalar sequential
/// engine, the batched engine, and the channel-sharded engine at 2, 4, and
/// 8 threads — with pooled phase-1 collection both forced on and off — are
/// bit-identical (counters *and* full per-slot feedback traces) on
/// randomized networks.
mod sharded_equivalence_property {
    use super::*;
    use proptest::prelude::*;

    fn topology(kind: u8, n: usize) -> Topology {
        match kind % 5 {
            0 => Topology::Star { leaves: n.max(2) - 1 },
            1 => Topology::Cycle { n: n.max(3) },
            2 => Topology::Complete { n: n.max(2) },
            3 => Topology::ErdosRenyi { n: n.max(2), p: 0.2 },
            _ => Topology::RandomGeometric { n: n.max(2), radius: 0.4 },
        }
    }

    /// Like [`run`] but over the scalar-only twin protocol: the engine
    /// takes the default per-node `act` delegation path.
    fn run_scalar(
        net: &Network,
        resolver: Resolver,
        seed: u64,
        c: u16,
        p_bcast: f64,
        slots: u64,
    ) -> (Counters, Vec<Vec<Obs>>) {
        let mut eng = Engine::with_resolver(net, seed, resolver, |ctx| {
            ScalarChatter(Chatter { c, p_bcast, id: ctx.id.0, trace: Vec::new() })
        });
        eng.run_to_completion(slots);
        (eng.counters(), eng.into_outputs())
    }

    /// Like [`run`] but with the pooled phase-1 threshold pinned.
    fn run_phase1(
        net: &Network,
        resolver: Resolver,
        seed: u64,
        c: u16,
        p_bcast: f64,
        slots: u64,
        phase1_min: usize,
    ) -> (Counters, Vec<Vec<Obs>>) {
        let mut eng = Engine::with_resolver(net, seed, resolver, |ctx| Chatter {
            c,
            p_bcast,
            id: ctx.id.0,
            trace: Vec::new(),
        });
        eng.set_phase1_pool_min_nodes(phase1_min);
        eng.run_to_completion(slots);
        (eng.counters(), eng.into_outputs())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sharded_and_batched_match_scalar_sequential(
            kind in 0u8..5,
            n in 4usize..40,
            c in 1u16..5,
            core in 1u16..3,
            seed in 0u64..1_000,
            p_bcast in 0.1f64..0.9,
        ) {
            let core = core.min(c) as usize;
            let net = build_network(
                &topology(kind, n),
                &ChannelModel::SharedCore { c: c as usize, core },
                seed.wrapping_mul(0x9E37) ^ kind as u64,
            );
            let c = net.channels_per_node() as u16;
            let slots = 48;
            // Ground truth: scalar act path, sequential auto resolver.
            let (ref_counters, ref_traces) =
                run_scalar(&net, Resolver::Auto, seed, c, p_bcast, slots);
            // Batched act path on the same sequential engine.
            let (counters, traces) = run(&net, Resolver::Auto, seed, c, p_bcast, slots);
            prop_assert_eq!(counters, ref_counters, "batched act diverges on counters");
            prop_assert_eq!(&traces, &ref_traces, "batched act diverges on traces");
            // Sharded engines, pooled phase-1 collection off and on.
            for threads in [2usize, 4, 8] {
                for phase1_min in [usize::MAX, 0] {
                    let (counters, traces) = run_phase1(
                        &net,
                        Resolver::ParallelSharded { threads },
                        seed,
                        c,
                        p_bcast,
                        slots,
                        phase1_min,
                    );
                    prop_assert_eq!(
                        counters, ref_counters,
                        "threads={} phase1_min={} diverges on counters",
                        threads, phase1_min
                    );
                    prop_assert_eq!(
                        &traces, &ref_traces,
                        "threads={} phase1_min={} diverges on feedback traces",
                        threads, phase1_min
                    );
                }
            }
        }
    }
}
