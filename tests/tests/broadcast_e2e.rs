//! End-to-end CGCAST: the full stack (discovery → dedicated channels →
//! distributed line-graph coloring → colored dissemination) must deliver
//! the payload to every node, with a globally consistent proper edge
//! coloring, on multiple topologies.

use crn_core::cgcast::CGCast;
use crn_core::coloring::is_proper_edge_coloring;
use crn_core::params::{GcastParams, ModelInfo};
use crn_integration::build;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Edge, Engine, NodeId};
use std::collections::BTreeMap;

fn run_gcast(
    topology: Topology,
    channels: ChannelModel,
    seed: u64,
) -> (crn_sim::Network, Vec<crn_core::cgcast::GcastOutput>) {
    let (net, model) = build(topology, channels, seed);
    let d = net.stats().diameter.expect("connected");
    let sched = GcastParams { dissemination_phases: d.max(1), ..Default::default() }
        .schedule(&ModelInfo::from_stats(&net.stats()));
    let _ = model;
    let mut eng = Engine::new(&net, seed ^ 0x6CA57, |ctx| {
        CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xCAFE))
    });
    let outcome = eng.run_to_completion(sched.total_slots());
    assert!(outcome.all_protocols_done);
    let outputs = eng.into_outputs();
    (net, outputs)
}

#[test]
fn gcast_informs_everyone_on_grid() {
    let (net, outputs) = run_gcast(
        Topology::Grid { rows: 3, cols: 3 },
        ChannelModel::SharedCore { c: 3, core: 2 },
        11,
    );
    for o in &outputs {
        assert_eq!(o.payload, Some(0xCAFE), "node {} missed the alert", o.id);
        assert!(o.colors_locally_valid, "node {} sees clashing colors", o.id);
    }
    assert_eq!(outputs.len(), net.len());
}

#[test]
fn gcast_informs_everyone_on_caterpillar() {
    let (_, outputs) = run_gcast(
        Topology::Caterpillar { spine: 3, legs: 2 },
        ChannelModel::SharedCore { c: 4, core: 2 },
        12,
    );
    for o in &outputs {
        assert_eq!(o.payload, Some(0xCAFE), "node {} missed the alert", o.id);
    }
}

#[test]
fn gcast_coloring_is_globally_proper() {
    let (net, outputs) =
        run_gcast(Topology::Cycle { n: 8 }, ChannelModel::SharedCore { c: 3, core: 2 }, 13);
    // Rebuild the edge->color map from per-node outputs via a second run
    // of the protocol state (known_colors is not exposed in the output, so
    // use discovered/dedicated counts as structural checks, and validate
    // locally-known colors through colors_locally_valid).
    for o in &outputs {
        assert!(o.colors_locally_valid);
        assert_eq!(o.dedicated_count, net.degree(o.id), "all edges usable");
        assert_eq!(o.known_colors, net.degree(o.id), "all incident colors known");
    }
}

#[test]
fn gcast_edge_colors_agree_between_endpoints() {
    let (net, model) =
        build(Topology::Grid { rows: 2, cols: 4 }, ChannelModel::SharedCore { c: 3, core: 2 }, 14);
    let d = net.stats().diameter.unwrap();
    let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&model);
    let mut eng = Engine::new(&net, 1414, |ctx| {
        CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(1))
    });
    eng.run_to_completion(sched.total_slots());
    let mut maps: Vec<BTreeMap<NodeId, u32>> = Vec::new();
    eng.for_each_protocol(|_, p| maps.push(p.known_colors().clone()));
    let mut edges = Vec::new();
    let mut colors = Vec::new();
    for (v, map) in maps.iter().enumerate() {
        for (&w, &c) in map {
            assert_eq!(
                maps[w.index()].get(&NodeId(v as u32)),
                Some(&c),
                "endpoints of ({v},{w}) disagree"
            );
            if (v as u32) < w.0 {
                edges.push(Edge::new(NodeId(v as u32), w));
                colors.push(Some(c));
            }
        }
    }
    assert_eq!(edges.len(), net.stats().edges, "every edge colored");
    assert!(is_proper_edge_coloring(&edges, &colors), "coloring must be proper");
}

#[test]
fn naive_broadcast_agrees_with_gcast_on_delivery() {
    use crn_core::baselines::NaiveBroadcast;
    let (net, model) =
        build(Topology::Path { n: 6 }, ChannelModel::SharedCore { c: 3, core: 2 }, 15);
    let slots = NaiveBroadcast::schedule_slots(&model, 5, 8.0);
    let mut eng = Engine::new(&net, 5151, |ctx| {
        NaiveBroadcast::new(ctx.id, model.c as u16, slots, (ctx.id == NodeId(0)).then_some(2))
    });
    eng.run_to_completion(slots);
    for o in eng.into_outputs() {
        assert_eq!(o.payload, Some(2), "naive broadcast must also deliver");
    }
}
