//! End-to-end tests of the resumable campaign layer: the kill/resume
//! differential (a campaign killed at any trial boundary and resumed must
//! be **bit-identical** — report and journal bytes — to an uninterrupted
//! run, at every thread count), breaker/retry accounting through the
//! journal, refusal paths (config mismatch, mid-file corruption), torn-tail
//! recovery, and property tests of the journal encoding.

use crn_sim::Counters;
use crn_workloads::campaign::{
    run_campaign, ArmResult, ArmSpec, BreakerConfig, CampaignError, CampaignOutcome, CampaignSpec,
    FaultPlan, InjectRetryable, Journal, JournalError, Record, RetryPolicy, TrialState, Unit,
};
use crn_workloads::experiments::{campaigns, ExpConfig};
use crn_workloads::runner::Trial;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("crn-campaign-e2e-{}-{name}.crnj", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

fn quick_cfg() -> ExpConfig {
    ExpConfig { quick: true, trials: 3, seed: 31 }
}

/// A synthetic unit runner: no engines, just a recognizable pure function
/// of `(arm, trial, attempt)` — fast enough to sweep every kill point.
fn synth_unit(u: &Unit) -> ArmResult<Trial> {
    ArmResult::Done {
        output: Trial {
            seed: ((u.arm as u64) << 32) | u.trial as u64,
            completed_at: Some(7 + u.trial as u64),
            slots_run: 64,
            counters: Counters { slots: 64, deliveries: u.arm as u64, ..Counters::default() },
        },
    }
}

fn synth_spec() -> CampaignSpec {
    CampaignSpec::new(
        "synthetic-kill-sweep",
        vec![ArmSpec::new("a", 3), ArmSpec::new("b", 2), ArmSpec::new("c", 2)],
        5,
    )
}

// ---------------------------------------------------------------------
// The headline differential, on a real experiment campaign (E2)
// ---------------------------------------------------------------------

#[test]
fn e2_kill_resume_is_bit_identical_across_threads() {
    let cfg = quick_cfg();
    let baseline = campaigns::run_e2(&cfg, 2, None, &FaultPlan::none()).unwrap();
    assert_eq!(baseline.outcome, CampaignOutcome::Completed);

    // One uninterrupted *journaled* run: the reference journal bytes.
    let ref_path = tmp("e2-ref");
    let uninterrupted = campaigns::run_e2(&cfg, 1, Some(&ref_path), &FaultPlan::none()).unwrap();
    assert_eq!(uninterrupted.arms, baseline.arms, "journaling must not change results");
    let ref_bytes = std::fs::read(&ref_path).unwrap();

    for threads in [1usize, 2, 4] {
        let path = tmp(&format!("e2-kill-t{threads}"));
        let killed =
            campaigns::run_e2(&cfg, threads, Some(&path), &FaultPlan::kill_after(2)).unwrap();
        assert_eq!(killed.outcome, CampaignOutcome::Killed { recorded: 2 });

        let resumed = campaigns::run_e2(&cfg, threads, Some(&path), &FaultPlan::none()).unwrap();
        assert_eq!(resumed.outcome, CampaignOutcome::Completed);
        assert!(resumed.resumed, "second run must have restored the journal");
        assert_eq!(
            resumed.arms, baseline.arms,
            "kill/resume at {threads} threads diverged from the uninterrupted campaign"
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            ref_bytes,
            "journal bytes diverged at {threads} threads"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&ref_path).ok();
}

// ---------------------------------------------------------------------
// Exhaustive kill-point sweep on a synthetic campaign
// ---------------------------------------------------------------------

#[test]
fn every_kill_point_resumes_to_identical_journal_and_report() {
    let spec = synth_spec();
    let ref_path = tmp("synth-ref");
    let baseline =
        run_campaign(&spec, 1, Some(&ref_path), &FaultPlan::none(), || (), |(), u| synth_unit(u))
            .unwrap();
    let ref_bytes = std::fs::read(&ref_path).unwrap();
    std::fs::remove_file(&ref_path).ok();

    for k in 1..spec.total_trials() {
        let path = tmp(&format!("synth-k{k}"));
        let killed = run_campaign(
            &spec,
            2,
            Some(&path),
            &FaultPlan::kill_after(k),
            || (),
            |(), u| synth_unit(u),
        )
        .unwrap();
        assert_eq!(killed.outcome, CampaignOutcome::Killed { recorded: k });

        let resumed =
            run_campaign(&spec, 2, Some(&path), &FaultPlan::none(), || (), |(), u| synth_unit(u))
                .unwrap();
        assert_eq!(resumed.outcome, CampaignOutcome::Completed);
        assert_eq!(resumed.arms, baseline.arms, "kill at {k} diverged");
        assert_eq!(std::fs::read(&path).unwrap(), ref_bytes, "journal bytes diverged at kill {k}");
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Breaker + retry accounting through the journal
// ---------------------------------------------------------------------

#[test]
fn breaker_trips_are_journaled_and_survive_resume() {
    let mut spec =
        CampaignSpec::new("faulty", vec![ArmSpec::new("doomed", 3), ArmSpec::new("fine", 3)], 1);
    spec.retry = RetryPolicy { max_attempts: 3, backoff_base: 1, backoff_cap: 4 };
    spec.breaker = BreakerConfig { failure_threshold: 2, cooldown_ticks: 2, max_trips: 1 };
    let fault = FaultPlan {
        kill_after_trials: None,
        inject_retryable: vec![InjectRetryable { arm: 0, trial: None, attempts_below: u32::MAX }],
    };

    let path = tmp("faulty");
    let report = run_campaign(&spec, 2, Some(&path), &fault, || (), |(), u| synth_unit(u)).unwrap();
    assert_eq!(report.outcome, CampaignOutcome::Completed, "tripped arm must not stall");
    let doomed = &report.arms[0];
    assert!(doomed.tripped, "persistent failures must trip the breaker for good");
    assert!(doomed.retries > 0, "failures must be charged as retries");
    assert!(doomed.backoff_ticks > 0, "retries must be scheduled with backoff");
    assert!(
        doomed.trials.iter().all(|t| matches!(t, TrialState::Abandoned { .. })),
        "every doomed unit is abandoned: {:?}",
        doomed.trials
    );
    assert_eq!(report.done_outputs(1).len(), 3, "healthy arm unaffected");

    // The journal holds the whole story: failures, trips, abandonments.
    let loaded = Journal::load(&path).unwrap();
    assert!(loaded.records.iter().any(|r| matches!(r, Record::Fail { .. })));
    assert!(loaded.records.iter().any(|r| matches!(r, Record::Trip { .. })));
    assert!(loaded.records.iter().any(|r| matches!(r, Record::Abandon { .. })));

    // Resuming the *finished* campaign replays nothing and restores both
    // terminal states and lifecycle accounting.
    let resumed = run_campaign(
        &spec,
        1,
        Some(&path),
        &fault,
        || (),
        |(), _| panic!("a finished campaign has nothing left to run"),
    )
    .unwrap();
    assert!(resumed.resumed);
    assert_eq!(resumed.outcome, CampaignOutcome::Completed);
    for (a, arm) in resumed.arms.iter().enumerate() {
        assert_eq!(arm.trials, report.arms[a].trials, "terminal states survive resume");
    }
    assert_eq!(resumed.arms[0].retries, report.arms[0].retries, "Fail records restore retries");
    assert!(resumed.arms[0].tripped, "Trip records restore the permanent trip");
    std::fs::remove_file(&path).ok();
}

/// The v2 resume guarantee: a campaign killed **mid-failure-streak** —
/// consecutive failures counted but the breaker not yet tripped, backoff
/// delays pending — resumes with those exact counts and deadlines, because
/// the journal's `wave` commit markers let resume replay every committed
/// wave through the real breaker/backoff code at its recorded tick. The
/// sweep kills at every terminal-record boundary under every thread
/// count and demands the resumed report, absolute tick counter, and
/// journal bytes all match the uninterrupted reference.
#[test]
fn kill_mid_streak_resumes_breaker_and_backoff_exactly() {
    let mut spec = CampaignSpec::new(
        "mid-streak",
        vec![ArmSpec::new("doomed", 3), ArmSpec::new("flaky", 2), ArmSpec::new("fine", 2)],
        11,
    );
    spec.retry = RetryPolicy { max_attempts: 4, backoff_base: 1, backoff_cap: 4 };
    spec.breaker = BreakerConfig { failure_threshold: 2, cooldown_ticks: 2, max_trips: 2 };
    // Arm 0 fails forever (streaks, trips, half-open probe failures, a
    // permanent trip); arm 1's units fail transiently (multi-wave backoff
    // chains that must survive a kill); arm 2 is healthy.
    let rules = vec![
        InjectRetryable { arm: 0, trial: None, attempts_below: u32::MAX },
        InjectRetryable { arm: 1, trial: Some(0), attempts_below: 2 },
        InjectRetryable { arm: 1, trial: Some(1), attempts_below: 1 },
    ];
    let fault = FaultPlan { kill_after_trials: None, inject_retryable: rules.clone() };

    let ref_path = tmp("mid-streak-ref");
    let baseline =
        run_campaign(&spec, 1, Some(&ref_path), &fault, || (), |(), u| synth_unit(u)).unwrap();
    assert_eq!(baseline.outcome, CampaignOutcome::Completed);
    assert!(baseline.arms[0].tripped, "the doomed arm must exercise the permanent-trip path");
    assert!(baseline.arms[1].retries > 0, "the flaky arm must exercise retries");
    assert!(baseline.arms[1].backoff_ticks > 0, "retries must schedule backoff");
    assert_eq!(baseline.done_outputs(2).len(), 2, "the healthy arm completes");
    let ref_bytes = std::fs::read(&ref_path).unwrap();
    std::fs::remove_file(&ref_path).ok();

    for threads in [1usize, 2, 4] {
        for k in 1..spec.total_trials() {
            let path = tmp(&format!("mid-streak-t{threads}-k{k}"));
            let kill = FaultPlan { kill_after_trials: Some(k), inject_retryable: rules.clone() };
            let killed =
                run_campaign(&spec, threads, Some(&path), &kill, || (), |(), u| synth_unit(u))
                    .unwrap();
            assert_eq!(killed.outcome, CampaignOutcome::Killed { recorded: k });

            let resumed =
                run_campaign(&spec, threads, Some(&path), &fault, || (), |(), u| synth_unit(u))
                    .unwrap();
            assert!(resumed.resumed);
            assert_eq!(resumed.outcome, CampaignOutcome::Completed);
            assert_eq!(
                resumed.arms, baseline.arms,
                "kill at {k} (threads {threads}) diverged from the uninterrupted campaign"
            );
            assert_eq!(
                resumed.ticks, baseline.ticks,
                "the tick counter must resume absolutely (kill {k}, threads {threads})"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                ref_bytes,
                "journal bytes diverged (kill {k}, threads {threads})"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

// ---------------------------------------------------------------------
// Refusal and recovery paths
// ---------------------------------------------------------------------

#[test]
fn changed_spec_refuses_resume() {
    let path = tmp("mismatch");
    run_campaign(
        &synth_spec(),
        1,
        Some(&path),
        &FaultPlan::kill_after(1),
        || (),
        |(), u| synth_unit(u),
    )
    .unwrap();

    let mut reseeded = synth_spec();
    reseeded.seed += 1;
    match run_campaign(&reseeded, 1, Some(&path), &FaultPlan::none(), || (), |(), u| synth_unit(u))
    {
        Err(CampaignError::Journal(JournalError::ConfigMismatch { .. })) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_tail_is_recovered_on_resume() {
    let spec = synth_spec();
    let baseline =
        run_campaign(&spec, 1, None, &FaultPlan::none(), || (), |(), u| synth_unit(u)).unwrap();

    let path = tmp("torn");
    run_campaign(&spec, 1, Some(&path), &FaultPlan::kill_after(3), || (), |(), u| synth_unit(u))
        .unwrap();
    // Simulate a crash mid-append: a half-written record with no newline.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"done a=2 t=1 attempt=0 se").unwrap();
    }

    let resumed =
        run_campaign(&spec, 2, Some(&path), &FaultPlan::none(), || (), |(), u| synth_unit(u))
            .unwrap();
    assert!(resumed.recovered_torn_tail, "the torn tail must be detected and truncated");
    assert_eq!(resumed.outcome, CampaignOutcome::Completed);
    assert_eq!(resumed.arms, baseline.arms, "recovery must reproduce the lost suffix exactly");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Journal encoding properties
// ---------------------------------------------------------------------

/// Arbitrary text, biased toward the characters the escaper must handle:
/// raw bytes through `from_utf8_lossy` produce spaces, `%`, `=`, control
/// characters, and replacement characters (multi-byte UTF-8).
fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24usize)
        .prop_map(|v| String::from_utf8_lossy(&v).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn done_records_round_trip(
        arm in 0usize..64,
        trial in 0usize..1024,
        attempt in 0u32..8,
        seed in any::<u64>(),
        completed in any::<u64>(),
        has_completed in any::<bool>(),
    ) {
        let counters = Counters {
            slots: seed.rotate_left(1),
            broadcasts: seed.rotate_left(2),
            listens: seed.rotate_left(3),
            sleeps: seed.rotate_left(4),
            deliveries: seed.rotate_left(5),
            collisions: seed.rotate_left(6),
            idle_listens: seed.rotate_left(7),
            pu_blocked_listens: seed.rotate_left(8),
            pu_blocked_broadcasts: seed.rotate_left(9),
            pu_busy_channel_slots: seed.rotate_left(10),
        };
        let rec = Record::Done {
            arm,
            trial,
            attempt,
            output: Trial {
                seed,
                completed_at: has_completed.then_some(completed),
                slots_run: completed ^ seed,
                counters,
            },
        };
        let line = rec.encode();
        prop_assert!(!line.contains('\n'), "one record = one line: {line:?}");
        prop_assert_eq!(Record::decode(&line), Some(rec));
    }

    #[test]
    fn text_records_round_trip(
        arm in 0usize..8,
        trial in 0usize..8,
        attempt in 0u32..4,
        reason in text(),
        error in text(),
    ) {
        let records = [
            Record::Skip { arm, trial, attempt, reason },
            Record::Fail { arm, trial, attempt, error },
        ];
        for rec in records {
            let line = rec.encode();
            prop_assert!(!line.contains('\n'), "one record = one line: {line:?}");
            prop_assert!(line.is_ascii(), "journal lines are pure ASCII: {line:?}");
            prop_assert_eq!(Record::decode(&line), Some(rec));
        }
    }

    #[test]
    fn journal_files_round_trip_arbitrary_records(
        trips in proptest::collection::vec((0usize..8, 1u32..5), 0..12usize),
        hash in any::<u64>(),
    ) {
        let records: Vec<Record> =
            trips.into_iter().map(|(arm, n)| Record::Trip { arm, trips: n }).collect();
        let path = tmp(&format!("prop-{hash:016x}"));
        {
            let mut j = Journal::create(&path, hash).unwrap();
            for r in &records {
                j.append(r);
            }
            j.checkpoint().unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.config_hash, hash);
        prop_assert_eq!(loaded.records, records);
        prop_assert!(!loaded.recovered_torn_tail);
    }
}
