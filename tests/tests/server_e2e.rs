//! End-to-end tests for the campaign server over real TCP.
//!
//! Extends the `campaign_e2e.rs` kill/resume differential to the network
//! layer: everything here talks to a [`Server`] through sockets, never
//! through the store directly, so the whole stack — accept loop, worker
//! pool, parser, router, scheduler, journal — is under test.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crn_server::json::{parse, Json};
use crn_server::{client, router, Server, ServerConfig};
use crn_workloads::campaign::FaultPlan;
use crn_workloads::experiments::campaigns;
use crn_workloads::experiments::ExpConfig;

/// Removes its directory on drop, pass or fail, so failing tests don't
/// leak journal directories into the temp filesystem.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("crn-server-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp journal dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(dir: &TempDir) -> Server {
    Server::start(ServerConfig {
        journal_dir: dir.0.clone(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let resp = client::post(addr, "/campaigns", Some(body)).expect("submit");
    assert_eq!(resp.status, 201, "submit: {}", resp.text());
    parse(&resp.text())
        .expect("submit response is json")
        .get("id")
        .and_then(Json::as_u64)
        .expect("submit response has id")
}

/// Polls until the job's state equals `want`; panics on any *other*
/// terminal state or on timeout.
fn wait_for_state(addr: SocketAddr, id: u64, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::get(addr, &format!("/campaigns/{id}")).expect("status poll");
        assert_eq!(resp.status, 200, "status: {}", resp.text());
        let state = parse(&resp.text())
            .expect("status is json")
            .get("state")
            .and_then(|s| s.as_str().map(str::to_string))
            .expect("status has state");
        if state == want {
            return;
        }
        assert!(
            !["completed", "killed", "cancelled", "failed"].contains(&state.as_str()),
            "job {id} reached {state:?} while waiting for {want:?}"
        );
        assert!(Instant::now() < deadline, "timed out waiting for job {id} to be {want:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn results_body(addr: SocketAddr, id: u64) -> Vec<u8> {
    let resp = client::get(addr, &format!("/campaigns/{id}/results")).expect("results");
    assert_eq!(resp.status, 200, "results: {}", resp.text());
    resp.body
}

/// Satellite: kill/resume e2e at the network layer. A campaign killed
/// mid-wave (deterministic fault-plan SIGKILL-equivalent at a trial
/// boundary), whose server is then torn down and replaced by a fresh
/// process on the same journal directory, must serve a `/results` body
/// byte-identical to an uninterrupted run's — which in turn must be
/// byte-identical to batch-mode `run_e2` shaped the same way.
#[test]
fn killed_server_resumes_to_byte_identical_results() {
    let cfg = ExpConfig { quick: true, trials: 2, seed: 13 };
    let threads = 2;
    let submit_body = r#"{"kind":"e2","quick":true,"trials":2,"seed":13,"threads":2}"#;
    let kill_body =
        r#"{"kind":"e2","quick":true,"trials":2,"seed":13,"threads":2,"fault":{"kill_after":2}}"#;

    // Batch-mode reference, rendered with the server's own canonical
    // shaping (acceptance criterion: HTTP results ≡ batch results).
    let report = campaigns::run_e2(&cfg, threads, None, &FaultPlan::none()).expect("batch e2");
    let name = campaigns::e2_spec(&cfg).name;
    let reference = router::results_json("e2", &name, &report).render().into_bytes();

    // Uninterrupted server run.
    let dir = TempDir::new("uninterrupted");
    let server = start(&dir);
    let id = submit(server.addr(), submit_body);
    wait_for_state(server.addr(), id, "completed");
    let uninterrupted = results_body(server.addr(), id);
    server.shutdown();
    assert_eq!(uninterrupted, reference, "server results must equal batch-mode results");

    // Killed mid-campaign; only the journal directory survives the
    // "crash" (full server teardown).
    let dir = TempDir::new("resumed");
    let server = start(&dir);
    let id = submit(server.addr(), kill_body);
    wait_for_state(server.addr(), id, "killed");
    let resp = client::get(server.addr(), &format!("/campaigns/{id}/results")).expect("results");
    assert_eq!(resp.status, 409, "killed job must 409 on /results: {}", resp.text());
    server.shutdown();

    // Fresh server, same journal dir: resubmitting the same campaign
    // resumes it from the WAL.
    let server = start(&dir);
    let id = submit(server.addr(), submit_body);
    wait_for_state(server.addr(), id, "completed");
    let status = client::get(server.addr(), &format!("/campaigns/{id}")).expect("status").text();
    assert!(status.contains("\"resumed\":true"), "restarted run must resume: {status}");
    let resumed = results_body(server.addr(), id);
    server.shutdown();
    assert_eq!(resumed, uninterrupted, "resumed results must be byte-identical");
}

/// Satellite: 8 client threads hammer `GET /campaigns/{id}` while the
/// campaign runs. Every response must be complete, well-formed JSON (no
/// torn bodies), progress counters must be monotone in each thread's
/// observation order, and unknown ids / double cancels must map to clean
/// 404/409s throughout.
#[test]
fn concurrent_status_polls_see_consistent_monotone_state() {
    let dir = TempDir::new("concurrent");
    let server = start(&dir);
    let addr = server.addr();
    let id = submit(addr, r#"{"kind":"e2","quick":true,"trials":4,"seed":29,"threads":2}"#);

    let done = Arc::new(AtomicBool::new(false));
    let pollers: Vec<_> = (0..8)
        .map(|worker| {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last_recorded = 0u64;
                let mut polls = 0u64;
                // Poll-then-check: every worker completes at least one
                // poll even if the campaign finishes before it starts.
                loop {
                    let resp =
                        client::get(addr, &format!("/campaigns/{id}")).expect("status poll");
                    assert_eq!(resp.status, 200, "worker {worker}: {}", resp.text());
                    // A torn body would fail to parse (or fail the client's
                    // Content-Length check before that).
                    let json = parse(&resp.text()).unwrap_or_else(|e| {
                        panic!("worker {worker}: torn/invalid JSON ({e}): {}", resp.text())
                    });
                    assert_eq!(json.get("id").and_then(Json::as_u64), Some(id));
                    if let Some(progress) = json.get("progress") {
                        let recorded = progress
                            .get("recorded")
                            .and_then(Json::as_u64)
                            .expect("progress.recorded");
                        let total =
                            progress.get("total").and_then(Json::as_u64).expect("progress.total");
                        assert!(
                            recorded >= last_recorded,
                            "worker {worker}: progress went backwards ({last_recorded} -> {recorded})"
                        );
                        assert!(recorded <= total, "worker {worker}: recorded exceeds total");
                        last_recorded = recorded;
                    }
                    polls += 1;
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                }
                polls
            })
        })
        .collect();

    // Unknown and malformed ids are clean 404s even under load.
    for bad in ["/campaigns/999", "/campaigns/zzz", "/campaigns/999/results"] {
        let resp = client::get(addr, bad).expect("bad-id request");
        assert_eq!(resp.status, 404, "{bad}: {}", resp.text());
    }
    assert_eq!(client::post(addr, "/campaigns/999/cancel", None).expect("cancel").status, 404);

    // A second queued job: cancel is accepted once, conflicts after.
    let other = submit(addr, r#"{"kind":"e2","quick":true,"trials":4,"seed":30,"threads":2}"#);
    let resp = client::post(addr, &format!("/campaigns/{other}/cancel"), None).expect("cancel");
    assert_eq!(resp.status, 202, "first cancel: {}", resp.text());
    let resp = client::post(addr, &format!("/campaigns/{other}/cancel"), None).expect("cancel");
    assert_eq!(resp.status, 409, "double cancel: {}", resp.text());
    let resp = client::get(addr, &format!("/campaigns/{other}/results")).expect("results");
    assert_eq!(resp.status, 409, "cancelled job has no results: {}", resp.text());

    wait_for_state(addr, id, "completed");
    done.store(true, Ordering::SeqCst);
    let total_polls: u64 = pollers.into_iter().map(|p| p.join().expect("poller")).sum();
    assert!(total_polls >= 8, "each poller must have completed at least one poll");

    // After completion the hammered job serves results normally.
    let body = results_body(addr, id);
    let json = parse(std::str::from_utf8(&body).expect("utf-8")).expect("results json");
    assert_eq!(json.get("outcome").and_then(Json::as_str), Some("completed"));
    server.shutdown();
}
