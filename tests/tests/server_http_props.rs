//! Property tests for the `crn-server` HTTP/1.1 request parser.
//!
//! Mirrors the journal-encoding proptests in `campaign_e2e.rs`: derive
//! structured inputs from the shim's numeric strategies, then assert the
//! parser's three load-bearing properties:
//!
//! 1. **Encode/parse round-trip** — `Request::encode` output re-parses to
//!    an equal request, for arbitrary methods, targets, header sets, and
//!    binary bodies.
//! 2. **Fragmentation independence** — the parse result is a pure
//!    function of the byte stream, never of how it was torn into reads:
//!    every two-piece split at every byte boundary, and arbitrary
//!    multi-piece chunkings, all yield the identical request.
//! 3. **Limit enforcement with the right statuses** — oversized request
//!    lines and header sections are rejected 431 *while streaming*
//!    (before the attacker finishes), oversized declared bodies 413, and
//!    malformed method tokens 400.

use crn_server::http::{Limits, ParseError, Request, RequestParser};
use proptest::prelude::*;

/// RFC 7230 `tchar` alphabet: bytes legal in methods and header names.
const TCHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!#$%&'*+-.^_`|~";

/// Bytes legal in a request target: visible ASCII minus space.
fn target_char(b: u8) -> char {
    (b'!' + b % 94) as char
}

/// Bytes legal in a header value interior: visible ASCII plus space.
fn value_char(b: u8) -> char {
    match b % 95 {
        94 => ' ',
        i => (b'!' + i) as char,
    }
}

fn method() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 1..8usize)
        .prop_map(|v| v.iter().map(|&b| TCHARS[b as usize % TCHARS.len()] as char).collect())
}

fn target() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24usize).prop_map(|v| {
        let mut t = String::from("/");
        t.extend(v.iter().map(|&b| target_char(b)));
        t
    })
}

/// Header names get an `x-` prefix so generated requests never collide
/// with the framing headers the parser interprets (`Content-Length`,
/// `Transfer-Encoding`) or strips semantics from (`Connection`).
fn header_name(v: &[u8]) -> String {
    let mut name = String::from("x-");
    name.extend(v.iter().map(|&b| TCHARS[b as usize % TCHARS.len()] as char));
    name
}

/// Values arrive trimmed of optional whitespace, so generate pre-trimmed
/// values to make equality exact.
fn header_value(v: &[u8]) -> String {
    let s: String = v.iter().map(|&b| value_char(b)).collect();
    s.trim_matches([' ', '\t']).to_string()
}

fn headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..10usize),
            proptest::collection::vec(any::<u8>(), 0..16usize),
        ),
        0..5usize,
    )
    .prop_map(|pairs| pairs.into_iter().map(|(n, v)| (header_name(&n), header_value(&v))).collect())
}

fn request() -> impl Strategy<Value = Request> {
    (method(), target(), headers(), proptest::collection::vec(any::<u8>(), 0..48usize))
        .prop_map(|(method, target, headers, body)| Request { method, target, headers, body })
}

/// Feeds the whole wire at once and expects exactly one request.
fn parse_whole(wire: &[u8]) -> Result<Option<Request>, ParseError> {
    let mut p = RequestParser::new(Limits::default());
    p.feed(wire);
    p.try_next()
}

/// Asserts `parsed` equals the `original` it was encoded from, modulo the
/// `Content-Length` header `encode` appends for non-empty bodies.
fn assert_round_trip(parsed: &Request, original: &Request) -> Result<(), TestCaseError> {
    prop_assert_eq!(&parsed.method, &original.method);
    prop_assert_eq!(&parsed.target, &original.target);
    prop_assert_eq!(&parsed.body, &original.body);
    let without_framing: Vec<&(String, String)> =
        parsed.headers.iter().filter(|(k, _)| !k.eq_ignore_ascii_case("content-length")).collect();
    let original_refs: Vec<&(String, String)> = original.headers.iter().collect();
    prop_assert_eq!(without_framing, original_refs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Property 1: encode → parse is the identity (modulo added framing).
    #[test]
    fn encode_parse_round_trips(req in request()) {
        let wire = req.encode();
        let parsed = parse_whole(&wire).unwrap().unwrap();
        assert_round_trip(&parsed, &req)?;
    }

    /// Property 2a: every two-piece split at every byte boundary parses
    /// to the same request, and no strict prefix ever yields one early.
    #[test]
    fn every_byte_boundary_split_parses_identically(req in request()) {
        let wire = req.encode();
        let whole = parse_whole(&wire).unwrap().unwrap();
        for split in 1..wire.len() {
            let mut p = RequestParser::new(Limits::default());
            p.feed(&wire[..split]);
            prop_assert_eq!(
                p.try_next(),
                Ok(None),
                "strict prefix of {} bytes (split {}) must not complete",
                wire.len(),
                split
            );
            p.feed(&wire[split..]);
            prop_assert_eq!(p.try_next(), Ok(Some(whole.clone())), "split at byte {}", split);
            prop_assert_eq!(p.buffered(), 0, "nothing left over after split at {}", split);
        }
    }

    /// Property 2b: arbitrary multi-piece chunkings (including chunk size
    /// 1, i.e. one byte per read) also parse identically.
    #[test]
    fn arbitrary_chunkings_parse_identically(req in request(), chunk in 1usize..7) {
        let wire = req.encode();
        let whole = parse_whole(&wire).unwrap().unwrap();
        let mut p = RequestParser::new(Limits::default());
        let mut fed = 0;
        for piece in wire.chunks(chunk) {
            fed += piece.len();
            p.feed(piece);
            if fed < wire.len() {
                prop_assert_eq!(p.try_next(), Ok(None), "incomplete at {} bytes", fed);
            }
        }
        prop_assert_eq!(p.try_next(), Ok(Some(whole)));
    }

    /// Property 3a: a request line that outgrows the limit is cut off 431
    /// mid-stream — the parser never buffers more than the limit plus one
    /// read before rejecting, even without a CRLF in sight.
    #[test]
    fn oversized_request_line_is_431_while_streaming(
        extra in 1usize..64,
        chunk in 1usize..17,
    ) {
        let limits = Limits { max_request_line: 128, ..Limits::default() };
        let mut p = RequestParser::new(limits);
        let flood = vec![b'A'; limits.max_request_line + extra];
        let mut rejected = None;
        for piece in flood.chunks(chunk) {
            p.feed(piece);
            if let Err(e) = p.try_next() {
                rejected = Some(e);
                break;
            }
        }
        let err = rejected.expect("flood past the limit must be rejected before EOF");
        prop_assert_eq!(err.status(), 431);
        prop_assert!(
            p.buffered() <= limits.max_request_line + chunk,
            "parser buffered {} bytes against a {}-byte limit",
            p.buffered(),
            limits.max_request_line
        );
    }

    /// Property 3b: header sections are bounded by both total bytes and
    /// field count; crossing either is a 431.
    #[test]
    fn oversized_header_sections_are_431(fields in 0usize..6, fat in any::<bool>()) {
        let limits =
            Limits { max_header_bytes: 256, max_headers: 4, ..Limits::default() };
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        if fat {
            // One header fatter than the whole section budget.
            wire.extend_from_slice(b"x-fat: ");
            wire.extend(std::iter::repeat_n(b'v', limits.max_header_bytes + 1));
            wire.extend_from_slice(b"\r\n");
        } else {
            // One more field than allowed, each individually small.
            for i in 0..=limits.max_headers + fields {
                wire.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
            }
        }
        wire.extend_from_slice(b"\r\n");
        let mut p = RequestParser::new(limits);
        p.feed(&wire);
        let err = p.try_next().expect_err("oversized header section must be rejected");
        prop_assert_eq!(err, ParseError::HeadersTooLarge);
        prop_assert_eq!(err.status(), 431);
    }

    /// Property 3c: a declared body over the limit is 413 *at the header
    /// boundary* — before a single body byte needs to arrive.
    #[test]
    fn oversized_declared_body_is_413_before_body_bytes(over in 1u64..1_000_000) {
        let limits = Limits { max_body: 4096, ..Limits::default() };
        let wire = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            limits.max_body as u64 + over
        );
        let mut p = RequestParser::new(limits);
        p.feed(wire.as_bytes());
        let err = p.try_next().expect_err("oversized declared body must be rejected");
        prop_assert_eq!(err, ParseError::BodyTooLarge);
        prop_assert_eq!(err.status(), 413);
    }

    /// Property 3d: corrupting a valid method with any non-tchar byte is
    /// a 400, never a panic and never a parse.
    #[test]
    fn malformed_method_bytes_are_400(req in request(), pick in any::<u8>(), pos in any::<u8>()) {
        // Bytes that can't appear in a method token but also don't merge
        // the method into the target (space) or truncate the line (CR/LF).
        const BAD: &[u8] = b"(),/:;<=>?@[\\]{}\"";
        let bad = BAD[pick as usize % BAD.len()];
        let mut method = req.method.clone().into_bytes();
        let at = pos as usize % method.len();
        method[at] = bad;
        let mut wire = method;
        wire.push(b' ');
        wire.extend_from_slice(req.target.as_bytes());
        wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = parse_whole(&wire).expect_err("corrupted method must be rejected");
        prop_assert_eq!(err.status(), 400);
    }
}

/// Deterministic companion to 2a: the canonical POST the server actually
/// receives, torn at every boundary — a fixed-vector safety net should
/// the generator distributions drift.
#[test]
fn canonical_submit_survives_every_split() {
    let wire = b"POST /campaigns HTTP/1.1\r\nHost: localhost\r\nContent-Length: 26\r\n\r\n{\"kind\":\"e2\",\"trials\":2}..";
    let whole = parse_whole(wire).unwrap().unwrap();
    assert_eq!(whole.method, "POST");
    assert_eq!(whole.body.len(), 26);
    for split in 1..wire.len() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(&wire[..split]);
        assert_eq!(p.try_next(), Ok(None), "split {split}");
        p.feed(&wire[split..]);
        assert_eq!(p.try_next(), Ok(Some(whole.clone())), "split {split}");
    }
}
