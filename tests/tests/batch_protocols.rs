//! Batch-vs-scalar differentials for every ported protocol in `crn-core`.
//!
//! The engine always drives protocols through [`Protocol::act_batch`] and
//! [`Protocol::feedback_batch`]; the ported implementations override both
//! with buffered bulk draws that must be *draw-for-draw identical* to their
//! scalar [`Protocol::act`] / [`Protocol::feedback`]. This file proves that
//! per protocol: each one is run side by side with a [`ScalarOnly`] twin —
//! a transparent wrapper that delegates everything *except* the two batch
//! hooks, so the engine falls back to the default per-node scalar
//! delegation for both — and the two executions must produce bit-identical
//! counters and outputs on the same network and seed.
//!
//! The matrix covers sequential and channel-sharded engines at threads
//! {1, 2, 4} with pooled phase-1 collection and pooled phase-3 delivery
//! each forced on and off, so the chunked dispatch of both batch hooks is
//! exercised, including ragged chunk boundaries.

use crn_core::baselines::{
    FixedRateDiscovery, FixedRateSchedule, NaiveBroadcast, NaiveDiscovery, NaiveDiscoverySchedule,
};
use crn_core::cgcast::{CGCast, UncoloredGcast};
use crn_core::count::{CountProtocol, Role};
use crn_core::exchange::Exchange;
use crn_core::params::{GcastParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::{shuffle_local_labels, ChannelModel};
use crn_sim::rng::stream_rng;
use crn_sim::topology::Topology;
use crn_sim::{
    Action, Counters, Engine, Feedback, LocalChannel, Network, NodeCtx, NodeId, Protocol, Resolver,
    SlotCtx,
};

/// A transparent protocol wrapper that forwards `act`, `feedback`,
/// `is_complete`, and `into_output` — but deliberately **neither**
/// `act_batch` **nor** `feedback_batch`, so the engine uses the trait's
/// default scalar delegation for both batch hooks. Running `P` and
/// `ScalarOnly<P>` side by side is therefore exactly a batched-vs-scalar
/// differential for `P`'s act *and* feedback paths.
struct ScalarOnly<P>(P);

impl<P: Protocol> Protocol for ScalarOnly<P> {
    type Message = P::Message;
    type Output = P::Output;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<P::Message> {
        self.0.act(ctx)
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, P::Message>) {
        self.0.feedback(ctx, fb)
    }

    fn is_complete(&self) -> bool {
        self.0.is_complete()
    }

    fn into_output(self) -> P::Output {
        self.0.into_output()
    }
}

fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
    let mut rng = stream_rng(seed, 999);
    let n = topo.num_nodes();
    let mut sets = model.assign(n, &mut rng);
    shuffle_local_labels(&mut sets, &mut rng);
    let mut b = Network::builder(n);
    for (v, set) in sets.into_iter().enumerate() {
        b.set_channels(NodeId(v as u32), set);
    }
    b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
    b.build().unwrap()
}

/// Runs `make`'s protocol batched and its [`ScalarOnly`] twin scalar,
/// across sequential and sharded engines at threads {1, 2, 4} with pooled
/// phase-1 collection and pooled phase-3 delivery each forced on and off,
/// and requires bit-identical counters and outputs everywhere.
fn assert_batch_matches_scalar<P, F>(net: &Network, seed: u64, slots: u64, make: F)
where
    P: Protocol + Send,
    P::Message: Send + Sync,
    P::Output: PartialEq + std::fmt::Debug + Send,
    F: Fn(NodeCtx) -> P + Copy,
{
    let scalar =
        |resolver: Resolver, phase1_min: usize, phase3_min: usize| -> (Counters, Vec<P::Output>) {
            let mut eng = Engine::with_resolver(net, seed, resolver, |ctx| ScalarOnly(make(ctx)));
            eng.set_phase1_pool_min_nodes(phase1_min);
            eng.set_phase3_pool_min_nodes(phase3_min);
            eng.run_to_completion(slots);
            (eng.counters(), eng.into_outputs())
        };
    let batched =
        |resolver: Resolver, phase1_min: usize, phase3_min: usize| -> (Counters, Vec<P::Output>) {
            let mut eng = Engine::with_resolver(net, seed, resolver, make);
            eng.set_phase1_pool_min_nodes(phase1_min);
            eng.set_phase3_pool_min_nodes(phase3_min);
            eng.run_to_completion(slots);
            (eng.counters(), eng.into_outputs())
        };

    let (ref_counters, ref_outputs) = scalar(Resolver::Auto, usize::MAX, usize::MAX);

    // The scalar twin under pooled delivery: a protocol that overrides
    // neither batch hook (any third-party impl) must survive the chunked
    // default delegation unchanged.
    let (counters, outputs) = scalar(Resolver::ParallelSharded { threads: 3 }, usize::MAX, 0);
    assert_eq!(counters, ref_counters, "pooled scalar-delegation counters diverge");
    assert_eq!(outputs, ref_outputs, "pooled scalar-delegation outputs diverge");

    // The batched protocol across threads {1, 2, 4} × pooled delivery
    // {off, on} (× pooled phase-1 on wherever the engine is sharded; a
    // 1-thread engine is plain sequential).
    for threads in [1usize, 2, 4] {
        let (resolver, phase1_min) = if threads == 1 {
            (Resolver::Auto, usize::MAX)
        } else {
            (Resolver::ParallelSharded { threads }, 0)
        };
        for phase3_min in [usize::MAX, 0] {
            let (counters, outputs) = batched(resolver, phase1_min, phase3_min);
            assert_eq!(
                counters, ref_counters,
                "batched counters diverge from scalar (threads {threads}, phase3_min {phase3_min})"
            );
            assert_eq!(
                outputs, ref_outputs,
                "batched outputs diverge from scalar (threads {threads}, phase3_min {phase3_min})"
            );
        }
    }
}

#[test]
fn cseek_batch_matches_scalar() {
    // n = 13 with 3 chunks gives ragged chunk boundaries; history recording
    // on so the full output surface is compared.
    let net = build_net(
        &Topology::RandomGeometric { n: 13, radius: 0.5 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        5,
    );
    let m = ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&m);
    assert_batch_matches_scalar(&net, 31, sched.total_slots(), |ctx: NodeCtx| {
        CSeek::new(ctx.id, sched, true)
    });
}

#[test]
fn cgcast_batch_matches_scalar() {
    let net = build_net(
        &Topology::Grid { rows: 2, cols: 3 },
        &ChannelModel::SharedCore { c: 3, core: 2 },
        6,
    );
    let m = ModelInfo::from_stats(&net.stats());
    let d = net.stats().diameter.expect("connected network");
    let sched = GcastParams { dissemination_phases: d.max(1), ..Default::default() }.schedule(&m);
    assert_batch_matches_scalar(&net, 19, sched.total_slots(), |ctx: NodeCtx| {
        CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xfeed))
    });
}

#[test]
fn uncolored_gcast_batch_matches_scalar() {
    let net = build_net(&Topology::Path { n: 5 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 2);
    let m = ModelInfo::from_stats(&net.stats());
    let d = net.stats().diameter.expect("connected network");
    let sched =
        GcastParams { dissemination_phases: 2 * d.max(1), ..Default::default() }.schedule(&m);
    // The uncolored variant's schedule is shorter than total_slots; running
    // to protocol completion covers the whole state machine.
    assert_batch_matches_scalar(&net, 23, sched.total_slots(), |ctx: NodeCtx| {
        UncoloredGcast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xfeed))
    });
}

#[test]
fn count_batch_matches_scalar() {
    // Clique on one shared channel: node 0 listens, the rest broadcast.
    let n = 9usize;
    let mut b = Network::builder(n);
    for v in 0..n {
        b.set_channels(NodeId(v as u32), vec![crn_sim::GlobalChannel(0)]);
    }
    for a in 0..n as u32 {
        for w in (a + 1)..n as u32 {
            b.add_edge(NodeId(a), NodeId(w));
        }
    }
    let net = b.build().unwrap();
    let sched = crn_core::params::CountParams::default().schedule(&ModelInfo {
        n: 64,
        c: 1,
        delta: 64,
        k: 1,
        kmax: 1,
    });
    assert_batch_matches_scalar(&net, 41, sched.total_slots(), |ctx: NodeCtx| {
        let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
        CountProtocol::new(ctx.id, role, sched, LocalChannel(0))
    });
}

#[test]
fn baselines_batch_match_scalar() {
    let net = build_net(&Topology::Cycle { n: 7 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 9);
    let m = ModelInfo::from_stats(&net.stats());

    let naive = NaiveDiscoverySchedule::new(&m, 2.0);
    assert_batch_matches_scalar(&net, 51, naive.total_slots(), |ctx: NodeCtx| {
        NaiveDiscovery::new(ctx.id, naive)
    });

    let fixed = FixedRateSchedule::new(&m, 2.0);
    assert_batch_matches_scalar(&net, 52, fixed.total_slots(), |ctx: NodeCtx| {
        FixedRateDiscovery::new(ctx.id, fixed)
    });

    let slots = NaiveBroadcast::schedule_slots(&m, 3, 2.0);
    assert_batch_matches_scalar(&net, 53, slots, |ctx: NodeCtx| {
        NaiveBroadcast::new(ctx.id, m.c as u16, slots, (ctx.id == NodeId(0)).then_some(42))
    });
}

#[test]
fn exchange_batch_matches_scalar() {
    let net = build_net(
        &Topology::Grid { rows: 3, cols: 3 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        1,
    );
    let m = ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&m);
    assert_batch_matches_scalar(&net, 17, sched.total_slots(), |ctx: NodeCtx| {
        Exchange::new(ctx.id, sched, vec![ctx.id.0; 2])
    });
}
