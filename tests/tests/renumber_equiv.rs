//! Permutation-invariance of the engine's internal node renumbering, and
//! the huge-sparse memory regression.
//!
//! The engine relabels nodes internally (degree-sorted by default) so CSR
//! neighbor probes are cache-local at large `n`. That renumbering must be
//! **observationally invisible**: every externally visible bit — counters,
//! per-slot feedback traces, outputs — is a function of `(network, seed)`
//! only, never of the internal label permutation. This file proves it
//! differentially: [`Renumbering::Identity`] (the unrenumbered engine) vs
//! [`Renumbering::DegreeSorted`] vs adversarial [`Renumbering::Custom`]
//! permutations, under every resolver × thread counts {1, 2, 4}, plus a
//! proptest over random permutations.
//!
//! The memory regression pins the other half of the tentpole: building a
//! sparse n = 10⁵ network must stay O(n + m) — no dense per-node adjacency
//! bitsets (the old `Vec<BitSet>` cost ~1.25 GB at this size and ~125 GB
//! at n = 10⁶).

use crn_sim::channels::ChannelModel;
use crn_sim::rng::stream_rng;
use crn_sim::topology::Topology;
use crn_sim::{
    Action, Counters, Engine, Feedback, LocalChannel, Network, NodeCtx, Protocol, Renumbering,
    Resolver, SlotCtx, StatsMode,
};
use rand::Rng;

/// Owned snapshot of one slot's feedback, so whole traces can be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    Sent,
    Heard(u64),
    Silence,
    Slept,
}

/// Randomized traffic recording every observation; messages encode
/// (sender, slot) so a delivery from the wrong broadcaster or slot can
/// never compare equal.
struct Chatter {
    c: u16,
    p_bcast: f64,
    id: u32,
    trace: Vec<Obs>,
}

impl Protocol for Chatter {
    type Message = u64;
    type Output = Vec<Obs>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u64> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(self.p_bcast) {
            Action::Broadcast { channel, message: ((self.id as u64) << 32) | ctx.slot.0 }
        } else if ctx.rng.gen_bool(0.9) {
            Action::Listen { channel }
        } else {
            Action::Sleep
        }
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        self.trace.push(match fb {
            Feedback::Sent => Obs::Sent,
            Feedback::Heard(m) => Obs::Heard(*m),
            Feedback::Silence => Obs::Silence,
            Feedback::Slept => Obs::Slept,
        });
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn into_output(self) -> Vec<Obs> {
        self.trace
    }
}

fn run(
    net: &Network,
    resolver: Resolver,
    renumbering: Renumbering,
    seed: u64,
    p_bcast: f64,
    slots: u64,
) -> (Counters, Vec<Vec<Obs>>) {
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast, id: ctx.id.0, trace: Vec::new() };
    let mut eng = Engine::with_renumbering(net, seed, resolver, renumbering, make);
    eng.run_to_completion(slots);
    (eng.counters(), eng.into_outputs())
}

/// A deterministic pseudo-random permutation of `0..n` (Fisher–Yates on a
/// keyed stream).
fn random_perm(n: usize, key: u64) -> Vec<u32> {
    let mut rng = stream_rng(0xC0FF_EE00 ^ key, 77);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

const ALL_RESOLVERS: [Resolver; 7] = [
    Resolver::Auto,
    Resolver::BroadcasterCentric,
    Resolver::ListenerCentric,
    Resolver::Naive,
    Resolver::ParallelSharded { threads: 1 },
    Resolver::ParallelSharded { threads: 2 },
    Resolver::ParallelSharded { threads: 4 },
];

/// The headline differential from the issue: internal renumbering is
/// bit-invisible under **every** resolver × thread count, on degree-skewed
/// and uniform topologies alike. `Identity` is the unrenumbered reference;
/// `DegreeSorted` is what production engines run; the reversal and a
/// pseudo-random shuffle are adversarial `Custom` labelings.
#[test]
fn renumbering_is_bit_invisible_across_all_resolvers() {
    let scenarios: [(Topology, ChannelModel, f64); 3] = [
        // Degree-skewed: the hub moves to internal id 0 under DegreeSorted.
        (Topology::Star { leaves: 60 }, ChannelModel::Identical { c: 2 }, 0.5),
        (Topology::ErdosRenyi { n: 64, p: 0.12 }, ChannelModel::SharedCore { c: 4, core: 2 }, 0.4),
        (
            Topology::RandomGeometric { n: 50, radius: 0.35 },
            ChannelModel::SharedCore { c: 3, core: 1 },
            0.5,
        ),
    ];

    for (si, (topology, channels, p_bcast)) in scenarios.into_iter().enumerate() {
        let net = Network::generate(&topology, &channels, 1000 + si as u64).unwrap();
        let n = net.len();
        let reversal: Vec<u32> = (0..n as u32).rev().collect();
        let alternates = [
            Renumbering::DegreeSorted,
            Renumbering::Custom(reversal),
            Renumbering::Custom(random_perm(n, si as u64)),
        ];
        for seed in [5u64, 23] {
            for resolver in ALL_RESOLVERS {
                let (ref_counters, ref_traces) =
                    run(&net, resolver, Renumbering::Identity, seed, p_bcast, 48);
                assert!(
                    ref_counters.deliveries > 0,
                    "scenario {si} seed {seed} never delivers — not probing anything"
                );
                for renum in alternates.clone() {
                    let tag = format!("scenario {si} seed {seed} {resolver:?} {renum:?}");
                    let (counters, traces) = run(&net, resolver, renum, seed, p_bcast, 48);
                    assert_eq!(counters, ref_counters, "{tag}: counters diverge from Identity");
                    assert_eq!(traces, ref_traces, "{tag}: feedback traces diverge from Identity");
                }
            }
        }
    }
}

/// Renumbering must also be invisible to the phase-1 autotuner and the
/// pooled collection path: pin the pooled threshold both ways on a sharded
/// engine and compare against the unrenumbered sequential reference.
#[test]
fn renumbering_is_invisible_with_pooled_collection_pinned() {
    let net = Network::generate(
        &Topology::ErdosRenyi { n: 48, p: 0.15 },
        &ChannelModel::SharedCore { c: 4, core: 2 },
        77,
    )
    .unwrap();
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast: 0.5, id: ctx.id.0, trace: Vec::new() };
    let (ref_counters, ref_traces) = run(&net, Resolver::Naive, Renumbering::Identity, 21, 0.5, 64);

    for threads in [2usize, 4] {
        for phase1_min in [0usize, usize::MAX] {
            let mut eng = Engine::with_renumbering(
                &net,
                21,
                Resolver::ParallelSharded { threads },
                Renumbering::DegreeSorted,
                make,
            );
            eng.set_phase1_pool_min_nodes(phase1_min);
            eng.run_to_completion(64);
            assert_eq!(
                eng.counters(),
                ref_counters,
                "threads={threads} phase1_min={phase1_min}: counters diverge"
            );
            assert_eq!(
                eng.into_outputs(),
                ref_traces,
                "threads={threads} phase1_min={phase1_min}: traces diverge"
            );
        }
    }
}

/// The huge-sparse memory regression (issue satellite): at n = 10⁵ with
/// average degree ≈ 8, network construction must stay linear — a few
/// megabytes, zero dense adjacency rows — where the old eager
/// `Vec<BitSet>` representation allocated ~1.25 GB. The engine on top
/// adds only O(n + m) internal state, `are_neighbors` still answers
/// correctly on both edges and non-edges, and a short sharded run
/// delivers messages.
#[test]
fn huge_sparse_1e5_builds_linear_and_runs() {
    let n = 100_000usize;
    let seed = 4242u64;
    let topology = Topology::SparseErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::SharedCore { c: 3, core: 2 };
    let net =
        Network::generate_with_stats(&topology, &channels, seed, StatsMode::Approximate).unwrap();

    let stats = net.stats();
    assert!(stats.edges > n, "expected a few hundred thousand edges, got {}", stats.edges);

    // O(n + m) memory: linear structures only. The dense-adjacency bound
    // this replaces is n²/8 = 1.25 GB; the flat CSR + channel tables for
    // this instance are ~7 MiB. 64 MiB leaves headroom without ever
    // tolerating a quadratic term.
    let fp = net.memory_footprint();
    assert_eq!(fp.adjacency_rows, 0, "avg degree 8 is far below the dense-row threshold");
    assert!(fp.total_bytes() < 64 << 20, "network footprint must stay O(n+m), got {fp}");

    // are_neighbors semantics survive the representation change: true on
    // generated edges, false on (overwhelmingly likely) non-edges.
    let edges = topology.edges(&mut stream_rng(seed, 1));
    assert_eq!(edges.len(), stats.edges);
    for &(a, b) in edges.iter().step_by(edges.len() / 64) {
        use crn_sim::NodeId;
        assert!(net.are_neighbors(NodeId(a), NodeId(b)), "edge ({a},{b}) lost");
        assert!(net.are_neighbors(NodeId(b), NodeId(a)), "edge ({b},{a}) lost");
    }
    {
        use crn_sim::NodeId;
        assert!(!net.are_neighbors(NodeId(0), NodeId(0)), "self-adjacency");
    }

    // The engine's renumbered internal state is linear too, and the whole
    // stack actually runs at this size.
    let c = net.channels_per_node() as u16;
    let make = |ctx: NodeCtx| Chatter { c, p_bcast: 0.05, id: ctx.id.0, trace: Vec::new() };
    let mut eng = Engine::with_resolver(&net, 7, Resolver::sharded(4), make);
    assert!(
        eng.internal_memory_bytes() < 64 << 20,
        "engine internal state must stay O(n+m), got {} bytes",
        eng.internal_memory_bytes()
    );
    eng.run_to_completion(4);
    assert!(eng.counters().deliveries > 0, "a 10⁵-node run must deliver something");
}

/// Property over random permutations (issue satellite): for arbitrary
/// topologies and seeds, an engine renumbered by a random permutation is
/// bit-identical to the unrenumbered engine at thread counts {1, 2, 4}.
mod permutation_property {
    use super::*;
    use proptest::prelude::*;

    fn topology(kind: u8, n: usize) -> Topology {
        match kind % 4 {
            0 => Topology::Star { leaves: n.max(2) - 1 },
            1 => Topology::Cycle { n: n.max(3) },
            2 => Topology::ErdosRenyi { n: n.max(2), p: 0.2 },
            _ => Topology::RandomGeometric { n: n.max(2), radius: 0.4 },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn random_permutations_are_bit_invisible(
            kind in 0u8..4,
            n in 4usize..40,
            c in 1u16..5,
            seed in 0u64..1_000,
            perm_key in any::<u64>(),
            p_bcast in 0.1f64..0.9,
        ) {
            let net = Network::generate(
                &topology(kind, n),
                &ChannelModel::SharedCore { c: c as usize, core: 1 },
                seed.wrapping_mul(0x9E37) ^ kind as u64,
            )
            .unwrap();
            let perm = random_perm(net.len(), perm_key);
            for threads in [1usize, 2, 4] {
                let resolver = Resolver::ParallelSharded { threads };
                let (ref_counters, ref_traces) =
                    run(&net, resolver, Renumbering::Identity, seed, p_bcast, 32);
                let (counters, traces) = run(
                    &net,
                    resolver,
                    Renumbering::Custom(perm.clone()),
                    seed,
                    p_bcast,
                    32,
                );
                prop_assert_eq!(
                    counters, ref_counters,
                    "threads={} perm {:x}: counters diverge", threads, perm_key
                );
                prop_assert_eq!(
                    &traces, &ref_traces,
                    "threads={} perm {:x}: traces diverge", threads, perm_key
                );
            }
        }
    }
}
