//! Property-based tests on the protocol state machines themselves:
//! schedule accounting, COUNT estimate structure, and exchange symmetry.

use crn_core::count::{CountInstance, Role};
use crn_core::params::{CountParams, CountSchedule, ModelInfo, SeekParams};
use crn_core::seek::SeekCore;
use crn_sim::rng::stream_rng;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelInfo> {
    (2usize..200, 1usize..12, 1usize..32, 1usize..6, 0usize..6).prop_map(
        |(n, c, delta, k, extra)| {
            let k = k.min(c);
            let kmax = (k + extra).min(c);
            ModelInfo { n, c, delta, k, kmax }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The schedule the params derive and the slots the state machine
    /// actually consumes must agree exactly — this is what keeps every
    /// node in the network in lockstep.
    #[test]
    fn seek_core_consumes_exactly_its_schedule(model in arb_model(), seed in 0u64..1000) {
        let sched = SeekParams::default().schedule(&model);
        let mut core = SeekCore::new(sched);
        let mut rng = stream_rng(seed, 0);
        let mut slots = 0u64;
        while let Some(_plan) = core.plan_slot(&mut rng) {
            core.record_heard(false);
            core.finish_slot();
            slots += 1;
            prop_assert!(slots <= sched.total_slots(), "overran the schedule");
        }
        prop_assert_eq!(slots, sched.total_slots());
        prop_assert!(core.is_done());
    }

    /// Same for CKSEEK schedules across valid k̂.
    #[test]
    fn kseek_core_consumes_exactly_its_schedule(
        model in arb_model(),
        khat_off in 0usize..6,
        seed in 0u64..1000,
    ) {
        let khat = (model.k + khat_off).min(model.kmax);
        let sched = SeekParams::default().kseek_schedule(&model, khat, None);
        let mut core = SeekCore::new(sched);
        let mut rng = stream_rng(seed, 0);
        let mut slots = 0u64;
        while core.plan_slot(&mut rng).is_some() {
            core.record_heard(false);
            core.finish_slot();
            slots += 1;
        }
        prop_assert_eq!(slots, sched.total_slots());
    }

    /// Plans always name channels within the node's range.
    #[test]
    fn seek_core_channels_in_range(model in arb_model(), seed in 0u64..1000) {
        let sched = SeekParams::default().schedule(&model);
        let mut core = SeekCore::new(sched);
        let mut rng = stream_rng(seed, 0);
        while let Some(plan) = core.plan_slot(&mut rng) {
            prop_assert!((plan.channel().0 as usize) < model.c);
            core.record_heard(false);
            core.finish_slot();
        }
    }

    /// A COUNT listener's estimate is always 0 or a power of two ≥ 4, and
    /// feeding it `heard` on every slot makes it trigger in round one
    /// (estimate exactly 4).
    #[test]
    fn count_estimates_are_structured(
        rounds in 1u32..8,
        round_len in 1u32..64,
        heard_everything in any::<bool>(),
    ) {
        let sched = CountSchedule {
            rounds,
            round_len,
            threshold_count: (round_len / 4).max(1),
        };
        let mut ci = CountInstance::new(sched, Role::Listener);
        while !ci.is_done() {
            ci.record_listen(heard_everything);
            ci.finish_slot();
        }
        let est = ci.estimate();
        if heard_everything && round_len > sched.threshold_count {
            prop_assert_eq!(est, 4, "constant chatter triggers in round one");
        }
        prop_assert!(
            est == 0 || (est >= 4 && est.is_power_of_two()),
            "estimate {} malformed",
            est
        );
    }

    /// Derived COUNT schedules respect the documented formulas.
    #[test]
    fn count_schedule_formulas(model in arb_model(), factor in 1.0f64..8.0) {
        let params = CountParams { round_len_factor: factor, min_round_len: 4, threshold: 0.08 };
        let sched = params.schedule(&model);
        prop_assert_eq!(sched.rounds, model.lg_delta());
        prop_assert!(sched.round_len >= 4);
        prop_assert!(sched.round_len as f64 >= factor * model.lg_n() - 1.0);
        prop_assert!(sched.threshold_count >= 1);
        prop_assert_eq!(sched.total_slots(), sched.rounds as u64 * sched.round_len as u64);
    }

    /// CSEEK schedules are monotone in the quantities Theorem 4 says they
    /// should be monotone in.
    #[test]
    fn seek_schedule_monotonicity(model in arb_model()) {
        let base = SeekParams::default().schedule(&model);
        // More channels -> at least as much part-one work.
        let more_c = ModelInfo { c: model.c + 1, kmax: model.kmax.min(model.c + 1), ..model };
        let s2 = SeekParams::default().schedule(&more_c);
        prop_assert!(s2.part1_steps >= base.part1_steps);
        // Larger degree -> at least as much part-two work.
        let more_d = ModelInfo { delta: model.delta + 1, ..model };
        let s3 = SeekParams::default().schedule(&more_d);
        prop_assert!(s3.part2_steps >= base.part2_steps);
    }
}
