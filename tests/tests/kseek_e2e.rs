//! End-to-end CKSEEK (Theorem 6): the filter variant finds every good
//! neighbor on a strictly shorter schedule, across group structures.

use crn_core::discovery::{outputs_khat_complete, outputs_sound};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_integration::build;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Engine;

#[test]
fn ckseek_finds_all_good_neighbors() {
    let (net, model) = build(
        Topology::Cycle { n: 18 },
        ChannelModel::GroupOverlay { c: 8, k: 1, kmax: 6, groups: 3 },
        21,
    );
    let khat = 6;
    let params = SeekParams::default();
    let sched = params.kseek_schedule(&model, khat, Some(net.delta_khat(khat)));
    assert!(
        sched.total_slots() < params.schedule(&model).total_slots(),
        "CKSEEK must be shorter than CSEEK"
    );
    let mut eng = Engine::new(&net, 77, |ctx| CSeek::new(ctx.id, sched, false));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    assert!(outputs_sound(&net, &outputs));
    assert!(outputs_khat_complete(&net, &outputs, khat));
}

#[test]
fn ckseek_without_delta_khat_estimate_still_works() {
    let (net, model) = build(
        Topology::Cycle { n: 12 },
        ChannelModel::GroupOverlay { c: 6, k: 1, kmax: 4, groups: 2 },
        22,
    );
    let khat = 4;
    let sched = SeekParams::default().kseek_schedule(&model, khat, None);
    let mut eng = Engine::new(&net, 88, |ctx| CSeek::new(ctx.id, sched, false));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    assert!(outputs_khat_complete(&net, &outputs, khat));
}

#[test]
fn khat_equals_k_degenerates_to_full_discovery() {
    use crn_core::discovery::outputs_complete;
    let (net, model) =
        build(Topology::Path { n: 6 }, ChannelModel::SharedCore { c: 4, core: 2 }, 23);
    let sched = SeekParams::default().kseek_schedule(&model, model.k, Some(model.delta));
    let mut eng = Engine::new(&net, 99, |ctx| CSeek::new(ctx.id, sched, false));
    eng.run_to_completion(sched.total_slots());
    let outputs = eng.into_outputs();
    assert!(outputs_complete(&net, &outputs), "k̂ = k must find everyone");
}
