//! End-to-end robustness coverage for the adversary module: the primitives
//! must *degrade*, never crash, under every [`JamStrategy`], and the
//! tracing/reset machinery they are measured with must itself be sound —
//! [`Recorded`] traces and sweep-jammer alignment must survive
//! [`Engine::reset`] reuse exactly as fresh engines would.

use crn_core::adversary::{JamStrategy, Jammer, NodeRole};
use crn_core::cgcast::CGCast;
use crn_core::discovery::DiscoveryProtocol;
use crn_core::params::{GcastParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::trace::{Recorded, SlotEvent};
use crn_sim::{Engine, Network, NodeId};

fn clique(n: usize, c: usize, seed: u64) -> Network {
    Network::generate(&Topology::Complete { n }, &ChannelModel::Identical { c }, seed)
        .expect("clique builds")
}

const ALL_STRATEGIES: [JamStrategy; 3] =
    [JamStrategy::Fixed(crn_sim::LocalChannel(0)), JamStrategy::Sweep, JamStrategy::Random];

/// Total ordered honest-pair discoveries of a CSEEK run on a clique where
/// the last `jammers` nodes jam instead of cooperating.
fn cseek_discoveries(n: usize, jammers: usize, strategy: JamStrategy, seed: u64) -> usize {
    let net = clique(n, 2, 3);
    let model = ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&model);
    let honest = n - jammers;
    let mut eng = Engine::new(&net, seed, |ctx| {
        if ctx.id.index() >= honest {
            NodeRole::Adversary(Jammer::new(2, strategy, ctx.id))
        } else {
            NodeRole::Honest(CSeek::new(ctx.id, sched, false))
        }
    });
    eng.run_to_completion(sched.total_slots());
    let mut found = 0usize;
    eng.for_each_protocol(|v, p| {
        if let Some(cs) = p.honest() {
            found += (0..honest)
                .filter(|&w| w != v.index())
                .filter(|&w| cs.has_discovered(NodeId(w as u32)))
                .count();
        }
    });
    found
}

/// Informed honest nodes of a CGCAST run with the last `jammers` nodes
/// jamming.
fn cgcast_informed(n: usize, jammers: usize, strategy: JamStrategy, seed: u64) -> usize {
    let net = clique(n, 2, 5);
    let d = net.stats().diameter.expect("clique is connected");
    let model = ModelInfo::from_stats(&net.stats());
    let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&model);
    let honest = n - jammers;
    let mut eng = Engine::new(&net, seed, |ctx| {
        if ctx.id.index() >= honest {
            // The jammer's payload is garbage by definition; any variant of
            // the honest message type will do.
            NodeRole::Adversary(Jammer::new(2, strategy, crn_core::cgcast::GcastMsg::Data(0)))
        } else {
            NodeRole::Honest(CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(9)))
        }
    });
    eng.run_to_completion(sched.total_slots());
    eng.into_outputs().into_iter().flatten().filter(|o| o.is_informed()).count()
}

/// CSEEK under every strategy: adding jammers must never *improve*
/// discovery (degradation is monotone in the jammer count for this
/// deterministic seed set), and no strategy may crash the pipeline.
#[test]
fn cseek_degrades_monotonically_under_each_strategy() {
    let n = 8;
    for strategy in ALL_STRATEGIES {
        let mut prev = usize::MAX;
        for jammers in [0usize, 1, 2] {
            let honest = n - jammers;
            // Average over a few seeds so the comparison tracks the trend,
            // not one lucky schedule.
            let total: usize =
                (0..3).map(|s| cseek_discoveries(n, jammers, strategy, 11 + s)).sum();
            let max = 3 * honest * (honest - 1);
            assert!(total <= max, "{strategy:?}: impossible discovery count");
            if jammers == 0 {
                assert!(
                    total >= max * 7 / 10,
                    "{strategy:?}: clean clique should mostly discover ({total}/{max})"
                );
            }
            // Normalize by the shrinking honest population before
            // comparing across jammer counts.
            let frac_x1000 = total * 1000 / max;
            assert!(
                frac_x1000 <= prev,
                "{strategy:?}: {jammers} jammer(s) improved discovery ({frac_x1000}‰ > {prev}‰)"
            );
            prev = frac_x1000;
        }
    }
}

/// CGCAST under every strategy: jammed runs inform no more honest nodes
/// than the clean run, and never panic.
#[test]
fn cgcast_degrades_under_each_strategy() {
    let n = 6;
    let clean: usize = (0..2).map(|s| cgcast_informed(n, 0, JamStrategy::Sweep, 21 + s)).sum();
    assert!(clean >= 2 * (n - 1), "clean clique should fully inform, got {clean}");
    for strategy in ALL_STRATEGIES {
        let jammed: usize = (0..2).map(|s| cgcast_informed(n, 1, strategy, 21 + s)).sum();
        assert!(
            jammed <= clean,
            "{strategy:?}: jamming must not improve dissemination ({jammed} > {clean})"
        );
    }
}

/// [`Recorded`] traces must survive [`Engine::reset`]: a reused engine's
/// per-slot event logs are byte-identical to a fresh engine's, for honest
/// protocols and jammers alike (this is what makes trace-based analysis
/// valid inside the engine-reuse trial runners).
#[test]
fn recorded_traces_survive_engine_reset() {
    let net = clique(5, 4, 7);
    let model = ModelInfo::from_stats(&net.stats());
    let sched = SeekParams::default().schedule(&model);
    let make = |ctx: crn_sim::NodeCtx| {
        if ctx.id == NodeId(4) {
            Recorded::new(NodeRole::Adversary(Jammer::new(4, JamStrategy::Sweep, ctx.id)))
        } else {
            Recorded::new(NodeRole::Honest(CSeek::new(ctx.id, sched, false)))
        }
    };
    let slots = sched.total_slots().min(200);

    let fresh = |seed: u64| -> Vec<Vec<SlotEvent>> {
        let mut eng = Engine::new(&net, seed, make);
        eng.run_to_completion(slots);
        eng.into_outputs().into_iter().map(|(_, trace)| trace).collect()
    };
    let fresh1 = fresh(9);
    let fresh2 = fresh(10);
    assert_ne!(fresh1, fresh2, "seeds must differ for the test to probe");

    let mut eng = Engine::new(&net, 9, make);
    eng.run_to_completion(slots);
    eng.reset(10, make);
    eng.run_to_completion(slots);
    let reused: Vec<Vec<SlotEvent>> =
        eng.into_outputs().into_iter().map(|(_, trace)| trace).collect();
    assert_eq!(reused, fresh2, "reused engine's traces diverge from a fresh engine");

    // The sweep jammer's channel sequence tracks the slot clock in both
    // runs: slot t jams local channel t mod c.
    let jam_trace = &reused[4];
    for (slot, ev) in jam_trace.iter().enumerate() {
        match ev {
            SlotEvent::Broadcast(ch) => {
                assert_eq!(ch.0 as usize, slot % 4, "sweep misaligned at slot {slot}")
            }
            other => panic!("jammer must broadcast every slot, got {other:?}"),
        }
    }
}
