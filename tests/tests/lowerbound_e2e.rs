//! Lower-bound machinery end-to-end: the reduction player, the hard tree
//! instance, and the closed-form bounds must be mutually consistent with
//! the measured algorithms.

use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_lowerbounds::analysis::{hitting_game_lower_bound, uniform_player_expected_rounds};
use crn_lowerbounds::game::HittingGame;
use crn_lowerbounds::players::{play, ExhaustivePlayer, ReductionPlayer, UniformRandomPlayer};
use crn_lowerbounds::tree::{lower_bound_tree, OracleTreeBroadcast};
use crn_sim::rng::stream_rng;
use crn_sim::{Engine, NodeId};

#[test]
fn no_player_beats_the_bound_on_average() {
    // Statistical check across players: mean rounds >= LB for both the
    // uniform and exhaustive players.
    for (c, k) in [(8usize, 2usize), (12, 3)] {
        let lb = hitting_game_lower_bound(c, k);
        let trials = 100;
        let mut uni = 0u64;
        let mut exh = 0u64;
        for t in 0..trials {
            let mut rng = stream_rng(500 + t, 0);
            let mut game = HittingGame::new(c, k, &mut rng);
            uni += play(&mut game, &mut UniformRandomPlayer::new(c), &mut rng, 1 << 24).unwrap();
            let mut rng = stream_rng(500 + t, 1);
            let mut game = HittingGame::new(c, k, &mut rng);
            exh += play(&mut game, &mut ExhaustivePlayer::new(c), &mut rng, 1 << 24).unwrap();
        }
        let uni_mean = uni as f64 / trials as f64;
        let exh_mean = exh as f64 / trials as f64;
        assert!(uni_mean >= lb, "uniform mean {uni_mean} below LB {lb} (c={c},k={k})");
        assert!(exh_mean >= lb, "exhaustive mean {exh_mean} below LB {lb} (c={c},k={k})");
        // And within a small factor of the expectation (sanity).
        let expect = uniform_player_expected_rounds(c, k);
        assert!(uni_mean < expect * 1.5, "uniform mean {uni_mean} too far above {expect}");
    }
}

#[test]
fn cseek_reduction_always_wins_within_schedule() {
    let (c, k) = (10usize, 2usize);
    let m = ModelInfo { n: 2, c, delta: 1, k, kmax: k };
    let sched = SeekParams::default().schedule(&m);
    for t in 0..10u64 {
        let mut rng = stream_rng(700 + t, 0);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = ReductionPlayer::new(
            CSeek::new(NodeId(0), sched, false),
            CSeek::new(NodeId(1), sched, false),
            t,
        );
        let rounds = play(&mut game, &mut player, &mut rng, sched.total_slots());
        assert!(rounds.is_some(), "trial {t}: CSEEK must meet within its schedule");
    }
}

#[test]
fn oracle_on_tree_matches_lower_bound_shape() {
    for (c, depth) in [(3usize, 3usize), (4, 2), (5, 2)] {
        let b = c - 1;
        let net = lower_bound_tree(c, c, depth).unwrap();
        let max_slots = ((depth + 1) * b) as u64 + 8;
        let mut eng =
            Engine::new(&net, 1, |ctx| OracleTreeBroadcast::new(&net, ctx.id, b, 5, max_slots));
        eng.run_to_completion(max_slots);
        let outs = eng.into_outputs();
        let worst = outs.iter().filter_map(|&(_, at)| at).max().unwrap();
        let lb = depth as u64; // at least one slot per level
        let ub = (depth * b + b) as u64;
        assert!(
            worst >= lb && worst <= ub,
            "c={c} depth={depth}: worst {worst} outside [{lb},{ub}]"
        );
        assert!(outs.iter().all(|(_, at)| at.is_some()), "everyone informed");
    }
}

#[test]
fn tree_stats_match_theorem_assumptions() {
    let net = lower_bound_tree(5, 5, 2).unwrap();
    let s = net.stats();
    assert_eq!(s.k, 1, "parent-child overlap is exactly one channel");
    assert_eq!(s.kmax, 1);
    assert_eq!(s.delta, 5, "root has b = 4 children; internal nodes 4 + 1 parent");
    assert_eq!(s.diameter, Some(4));
}
