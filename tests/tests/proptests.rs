//! Property-based tests on the core invariants of the whole stack:
//! channel models, the engine's collision semantics (checked against a
//! brute-force oracle), line graphs, colorings, and the hitting game.

use crn_core::coloring::{
    color_graph, greedy_edge_coloring, is_proper_coloring, is_proper_edge_coloring, palette_size,
    LineGraph,
};
use crn_lowerbounds::game::HittingGame;
use crn_sim::channels::{overlap_size, shuffle_local_labels, ChannelModel};
use crn_sim::rng::stream_rng;
use crn_sim::{
    Action, Edge, Engine, Feedback, GlobalChannel, LocalChannel, Network, NodeId, Protocol, SlotCtx,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Channel model invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shared_core_overlap_is_exactly_core(
        n in 2usize..20,
        c in 2usize..10,
        core in 1usize..9,
        seed in 0u64..1000,
    ) {
        let core = core.min(c);
        let mut rng = stream_rng(seed, 0);
        let sets = ChannelModel::SharedCore { c, core }.assign(n, &mut rng);
        prop_assert!(sets.iter().all(|s| s.len() == c));
        for a in 0..n {
            for b in (a + 1)..n {
                prop_assert_eq!(overlap_size(&sets[a], &sets[b]), core);
            }
        }
    }

    #[test]
    fn group_overlay_overlap_is_k_or_kmax(
        n in 2usize..24,
        k in 1usize..4,
        extra in 0usize..4,
        groups in 1usize..5,
        seed in 0u64..1000,
    ) {
        let kmax = k + extra;
        let c = kmax + 2;
        let mut rng = stream_rng(seed, 0);
        let sets = ChannelModel::GroupOverlay { c, k, kmax, groups }.assign(n, &mut rng);
        prop_assert!(sets.iter().all(|s| s.len() == c));
        for a in 0..n {
            for b in (a + 1)..n {
                let o = overlap_size(&sets[a], &sets[b]);
                prop_assert!(o == k || o == kmax, "overlap {} not in {{{k},{kmax}}}", o);
            }
        }
    }

    #[test]
    fn crowded_split_hub_overlap_is_k(
        leaves in 1usize..40,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let c = k + 4;
        let mut rng = stream_rng(seed, 0);
        let sets = ChannelModel::CrowdedSplit { c, k, hot: 1, k_hot: 1.min(k) }
            .assign(leaves + 1, &mut rng);
        for leaf in 1..=leaves {
            prop_assert_eq!(overlap_size(&sets[0], &sets[leaf]), k);
        }
    }

    #[test]
    fn random_pool_sets_are_valid(
        n in 1usize..20,
        c in 1usize..8,
        slack in 0usize..8,
        seed in 0u64..1000,
    ) {
        let universe = c + slack;
        let mut rng = stream_rng(seed, 0);
        let sets = ChannelModel::RandomPool { c, universe }.assign(n, &mut rng);
        for s in &sets {
            prop_assert_eq!(s.len(), c);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), c, "duplicate channels");
            prop_assert!(s.iter().all(|g| (g.0 as usize) < universe));
        }
    }

    #[test]
    fn label_shuffle_preserves_network_stats(
        n in 2usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = stream_rng(seed, 0);
        let mut sets = ChannelModel::SharedCore { c: 4, core: 2 }.assign(n, &mut rng);
        let build = |sets: &[Vec<GlobalChannel>]| {
            let mut b = Network::builder(n);
            for (v, s) in sets.iter().enumerate() {
                b.set_channels(NodeId(v as u32), s.clone());
            }
            for v in 0..n as u32 - 1 {
                b.add_edge(NodeId(v), NodeId(v + 1));
            }
            b.build().unwrap()
        };
        let before = build(&sets).stats();
        shuffle_local_labels(&mut sets, &mut rng);
        let after = build(&sets).stats();
        prop_assert_eq!(before, after);
    }
}

// ---------------------------------------------------------------------
// Engine vs brute-force oracle
// ---------------------------------------------------------------------

/// Owned snapshot of a [`Feedback`] (which borrows heard messages from the
/// engine's action buffer and so cannot be stored directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    Sent,
    Heard(u32),
    Silence,
    Slept,
}

impl Obs {
    fn of(fb: Feedback<'_, u32>) -> Obs {
        match fb {
            Feedback::Sent => Obs::Sent,
            Feedback::Heard(m) => Obs::Heard(*m),
            Feedback::Silence => Obs::Silence,
            Feedback::Slept => Obs::Slept,
        }
    }
}

/// Replays a fixed per-slot action script and records all feedback.
struct Scripted {
    script: Vec<Action<u32>>,
    got: Vec<Obs>,
    t: usize,
}

impl Protocol for Scripted {
    type Message = u32;
    type Output = Vec<Obs>;
    fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
        let a = self.script[self.t].clone();
        self.t += 1;
        a
    }
    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
        self.got.push(Obs::of(fb));
    }
    fn is_complete(&self) -> bool {
        self.t >= self.script.len()
    }
    fn into_output(self) -> Vec<Obs> {
        self.got
    }
}

/// Brute-force model semantics: what should node `v` observe in a slot?
fn oracle_feedback(net: &Network, actions: &[Action<u32>], v: usize) -> Obs {
    match &actions[v] {
        Action::Sleep => Obs::Slept,
        Action::Broadcast { .. } => Obs::Sent,
        Action::Listen { channel } => {
            let g = net.local_to_global(NodeId(v as u32), *channel);
            let mut heard = None;
            let mut count = 0;
            for w in net.neighbors(NodeId(v as u32)) {
                if let Action::Broadcast { channel: wc, message } = &actions[w.index()] {
                    if net.local_to_global(w, *wc) == g {
                        count += 1;
                        heard = Some(*message);
                    }
                }
            }
            if count == 1 {
                Obs::Heard(heard.unwrap())
            } else {
                Obs::Silence
            }
        }
    }
}

fn arb_action(c: usize) -> impl Strategy<Value = Action<u32>> {
    prop_oneof![
        (0..c as u16, any::<u32>())
            .prop_map(|(ch, m)| Action::Broadcast { channel: LocalChannel(ch), message: m }),
        (0..c as u16).prop_map(|ch| Action::Listen { channel: LocalChannel(ch) }),
        Just(Action::Sleep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_brute_force_oracle(
        n in 2usize..7,
        slots in 1usize..6,
        seed in 0u64..500,
        scripts in proptest::collection::vec(
            proptest::collection::vec(arb_action(3), 6),
            7,
        ),
    ) {
        // Identical channel sets keep every action valid; a ring keeps the
        // neighbor structure non-trivial (plus chords from seed parity).
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(
                NodeId(v as u32),
                vec![GlobalChannel(0), GlobalChannel(1), GlobalChannel(2)],
            );
        }
        for v in 0..n as u32 {
            b.add_edge(NodeId(v), NodeId((v + 1) % n as u32));
        }
        if seed % 2 == 0 && n > 3 {
            b.add_edge(NodeId(0), NodeId(2));
        }
        let net = b.build().unwrap();

        // Build per-node scripts of the right length.
        let node_scripts: Vec<Vec<Action<u32>>> = (0..n)
            .map(|v| scripts[v].iter().take(slots).cloned().collect())
            .collect();

        let mut eng = Engine::new(&net, seed, |ctx| Scripted {
            script: node_scripts[ctx.id.index()].clone(),
            got: Vec::new(),
            t: 0,
        });
        eng.run_to_completion(slots as u64);
        let outputs = eng.into_outputs();

        for t in 0..slots {
            let slot_actions: Vec<Action<u32>> =
                (0..n).map(|v| node_scripts[v][t].clone()).collect();
            for (v, output) in outputs.iter().enumerate() {
                let want = oracle_feedback(&net, &slot_actions, v);
                prop_assert_eq!(
                    &output[t], &want,
                    "slot {} node {}: engine disagrees with oracle", t, v
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Line graph and coloring invariants
// ---------------------------------------------------------------------

fn arb_edge_set() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::btree_set((0u32..10, 0u32..10), 1..20).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect::<std::collections::BTreeSet<Edge>>()
            .into_iter()
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn line_graph_adjacency_is_shared_endpoint(edges in arb_edge_set()) {
        prop_assume!(!edges.is_empty());
        let lg = LineGraph::of(&edges);
        for i in 0..lg.len() {
            for j in 0..lg.len() {
                if i == j {
                    continue;
                }
                let adjacent = lg.neighbors(i).contains(&(j as u32));
                let should = lg.edge(i).shares_endpoint(lg.edge(j));
                prop_assert_eq!(adjacent, should, "{} vs {}", lg.edge(i), lg.edge(j));
            }
        }
    }

    #[test]
    fn greedy_coloring_is_always_proper(edges in arb_edge_set()) {
        prop_assume!(!edges.is_empty());
        let colors = greedy_edge_coloring(&edges);
        let opts: Vec<Option<u32>> = colors.iter().map(|&c| Some(c)).collect();
        prop_assert!(is_proper_edge_coloring(&edges, &opts));
        // Vizing-style bound for greedy: at most 2Δ − 1 colors.
        let mut deg = std::collections::HashMap::new();
        for e in &edges {
            *deg.entry(e.lo()).or_insert(0usize) += 1;
            *deg.entry(e.hi()).or_insert(0usize) += 1;
        }
        let delta = deg.values().copied().max().unwrap_or(1);
        prop_assert!(palette_size(&colors) < 2 * delta);
    }

    #[test]
    fn luby_coloring_is_proper_when_complete(
        edges in arb_edge_set(),
        seed in 0u64..500,
    ) {
        prop_assume!(!edges.is_empty());
        let lg = LineGraph::of(&edges);
        let palette = (lg.max_degree() + 2) as u32;
        let mut rng = stream_rng(seed, 0);
        let res = color_graph(lg.adjacency(), palette, 5_000, &mut rng);
        prop_assert!(res.complete, "ample palette must converge");
        prop_assert!(is_proper_coloring(lg.adjacency(), &res.colors));
    }
}

// ---------------------------------------------------------------------
// Hitting game invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn game_wins_exactly_on_matching_edges(
        c in 2usize..10,
        k in 1usize..10,
        seed in 0u64..1000,
    ) {
        let k = k.min(c);
        let mut rng = stream_rng(seed, 0);
        let game = HittingGame::new(c, k, &mut rng);
        // Exhaustive scan: count wins over a fresh game per proposal to
        // observe the full win set.
        let mut wins = 0usize;
        for a in 0..c as u32 {
            for b in 0..c as u32 {
                let mut g = game.clone();
                if g.propose(a, b) {
                    wins += 1;
                }
            }
        }
        prop_assert_eq!(wins, k, "exactly k edges win");
    }

    #[test]
    fn exhaustive_player_wins_within_c_squared(
        c in 2usize..10,
        k in 1usize..10,
        seed in 0u64..1000,
    ) {
        use crn_lowerbounds::players::{play, ExhaustivePlayer};
        let k = k.min(c);
        let mut rng = stream_rng(seed, 0);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = ExhaustivePlayer::new(c);
        let rounds = play(&mut game, &mut player, &mut rng, (c * c) as u64 + 1);
        prop_assert!(rounds.is_some());
        prop_assert!(rounds.unwrap() <= (c * c) as u64);
    }
}
