//! Shared helpers for the cross-crate integration tests.

use crn_core::params::ModelInfo;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Network;
use crn_workloads::Scenario;

/// Builds a scenario network and its model parameters with one call.
pub fn build(topology: Topology, channels: ChannelModel, seed: u64) -> (Network, ModelInfo) {
    let built = Scenario::new("it", topology, channels, seed)
        .build()
        .expect("integration scenario must build");
    (built.net, built.model)
}
