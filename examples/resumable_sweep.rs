//! Kill-and-resume a journaled experiment campaign: runs the E2 discovery
//! sweep (CSEEK completion time vs channel count) through the resumable
//! campaign layer, SIGKILLs it — via the built-in fault plan — after a few
//! trials, resumes from the on-disk journal, and proves the resumed
//! campaign is **bit-identical** to one that was never interrupted: same
//! per-arm reports, same journal bytes.
//!
//! Run with: `cargo run --release -p crn-examples --example resumable_sweep`
//!
//! Exits non-zero if the differential fails, so CI runs this as the
//! kill/resume smoke step. Journals live in a dedicated directory
//! (`CRN_JOURNAL_DIR` overrides the default under the system temp dir)
//! that a drop guard removes on *every* exit path — success, failed
//! differential, or panic — and the CI step asserts the cleanup.

use crn_workloads::campaign::{CampaignOutcome, FaultPlan, Journal};
use crn_workloads::experiments::{campaigns, ExpConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// Owns the journal directory for the lifetime of the run and removes it
/// on drop. `ExitCode` returns and panics both unwind through this;
/// only an actual SIGKILL skips it — and then the journal is exactly
/// what you *want* left behind.
struct JournalDir(PathBuf);

impl JournalDir {
    fn new() -> JournalDir {
        let path = std::env::var_os("CRN_JOURNAL_DIR").map(PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("resumable-sweep-{}", std::process::id()))
        });
        std::fs::create_dir_all(&path).expect("create journal dir");
        JournalDir(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for JournalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn main() -> ExitCode {
    let cfg = ExpConfig { quick: true, trials: 3, seed: 7 };
    let threads = campaigns::default_threads(&cfg);
    let spec = campaigns::e2_spec(&cfg);
    println!(
        "campaign {:?}: {} arms x {} trials, {} threads",
        spec.name,
        spec.arms.len(),
        cfg.trials(),
        threads
    );

    let dir = JournalDir::new();
    let journal = dir.file("sweep.crnj");
    let reference = dir.file("sweep.reference.crnj");

    // The reference: the same campaign, never interrupted (journaled too,
    // so the final journal bytes can be compared).
    let uninterrupted = campaigns::run_e2(&cfg, threads, Some(&reference), &FaultPlan::none())
        .expect("uninterrupted campaign");

    // Act 1: run with a fault plan that kills the process at a trial
    // boundary — the moral equivalent of a SIGKILL or an OOM mid-sweep.
    let kill_at = spec.total_trials() / 2;
    let killed = campaigns::run_e2(&cfg, threads, Some(&journal), &FaultPlan::kill_after(kill_at))
        .expect("killed campaign still checkpoints");
    let recorded = match killed.outcome {
        CampaignOutcome::Killed { recorded } => recorded,
        other => panic!("fault plan must kill the campaign, got {other:?}"),
    };
    let bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    println!(
        "\nkilled after {recorded}/{} trials; journal holds {bytes} bytes at {}",
        spec.total_trials(),
        journal.display()
    );
    let loaded = Journal::load(&journal).expect("journal readable after the kill");
    println!(
        "journal: config {:016x}, {} records survive the crash",
        loaded.config_hash,
        loaded.records.len()
    );

    // Act 2: re-run the identical command line. The runner finds the
    // journal, checks the config hash, restores every finished unit, and
    // runs only the remainder.
    let resumed = campaigns::run_e2(&cfg, threads, Some(&journal), &FaultPlan::none())
        .expect("resumed campaign");
    assert!(resumed.resumed, "second run must resume, not restart");
    println!(
        "\nresumed: outcome {:?}, {} scheduling ticks in the second process",
        resumed.outcome, resumed.ticks
    );
    println!("\n  arm      done  mean slots-to-complete");
    for (a, arm) in resumed.arms.iter().enumerate() {
        let done = resumed.done_outputs(a);
        let completed: Vec<u64> = done.iter().filter_map(|t| t.completed_at).collect();
        let mean = completed.iter().sum::<u64>() as f64 / completed.len().max(1) as f64;
        println!("  {:<8} {:>4}  {mean:>8.1}", arm.name, done.len());
    }

    // The differential: resumed == uninterrupted, down to the journal bytes.
    let identical_reports = resumed.arms == uninterrupted.arms;
    let identical_journals = std::fs::read(&journal).ok() == std::fs::read(&reference).ok();
    println!(
        "\nresumed vs uninterrupted: reports {}, journal bytes {}",
        if identical_reports { "identical" } else { "DIVERGED" },
        if identical_journals { "identical" } else { "DIVERGED" },
    );
    if identical_reports && identical_journals {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
