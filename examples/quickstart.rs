//! Quickstart: build a small cognitive radio network, run CSEEK neighbor
//! discovery, and print what every node found.
//!
//! Run with: `cargo run --release -p crn-examples --example quickstart`

use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, NodeId};
use crn_workloads::Scenario;

fn main() {
    // Eight nodes on a ring; every pair of neighbors shares a 2-channel
    // core out of c = 5 channels per node (the rest are private).
    let scenario = Scenario::new(
        "quickstart",
        Topology::Cycle { n: 8 },
        ChannelModel::SharedCore { c: 5, core: 2 },
        42,
    );
    let built = scenario.build().expect("scenario builds");
    let stats = built.net.stats();
    println!(
        "network: n = {}, c = {}, k = {}, kmax = {}, Δ = {}, D = {:?}",
        stats.n, stats.c, stats.k, stats.kmax, stats.delta, stats.diameter
    );

    // Derive the CSEEK schedule from the globally-known parameters and run.
    let model = ModelInfo::from_stats(&stats);
    let sched = SeekParams::default().schedule(&model);
    println!(
        "CSEEK schedule: part 1 = {} steps, part 2 = {} steps, total = {} slots",
        sched.part1_steps,
        sched.part2_steps,
        sched.total_slots()
    );

    let mut engine = Engine::new(&built.net, 7, |ctx| CSeek::new(ctx.id, sched, false));
    let outcome = engine.run_to_completion(sched.total_slots());
    println!(
        "ran {} slots ({} deliveries, {} collisions)",
        outcome.slots_run,
        engine.counters().deliveries,
        engine.counters().collisions
    );

    let mut complete = true;
    let outputs = engine.into_outputs();
    for out in &outputs {
        let expected: Vec<NodeId> = built.net.neighbors(out.id).collect();
        let ok = out.neighbors == expected;
        complete &= ok;
        println!(
            "  {} discovered {:?}  [{}]",
            out.id,
            out.neighbors.iter().map(|v| v.0).collect::<Vec<_>>(),
            if ok { "complete" } else { "INCOMPLETE" }
        );
    }
    println!(
        "neighbor discovery {}",
        if complete { "succeeded at every node" } else { "left gaps (rerun with another seed)" }
    );
}
