//! Spectrum-level view of a CSEEK run: wraps every node in the trace
//! recorder and renders ASCII timelines plus per-channel utilization,
//! making the two-part structure of the algorithm visible (dense COUNT
//! listening in part one, density-weighted camping in part two).
//!
//! Run with: `cargo run --release -p crn-examples --bin spectrum_trace`

use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::trace::{render_timeline, ChannelUsage, Recorded};
use crn_sim::{Engine, NodeId};
use crn_workloads::Scenario;

fn main() {
    let scenario = Scenario::new(
        "trace",
        Topology::Star { leaves: 6 },
        ChannelModel::CrowdedSplit { c: 4, k: 2, hot: 1, k_hot: 1 },
        11,
    );
    let built = scenario.build().expect("scenario builds");
    let s = built.net.stats();
    let model = ModelInfo::from_stats(&s);
    // A deliberately light schedule so the timeline fits a terminal.
    let params = SeekParams { part1_factor: 1.0, part2_factor: 6.0, ..Default::default() };
    let sched = params.schedule(&model);
    println!(
        "CSEEK on a crowded star (Δ = {}, c = {}): {} slots ({} part-1 steps, {} part-2 steps)\n",
        s.delta,
        s.c,
        sched.total_slots(),
        sched.part1_steps,
        sched.part2_steps
    );

    let mut engine =
        Engine::new(&built.net, 5, |ctx| Recorded::new(CSeek::new(ctx.id, sched, false)));
    engine.run_to_completion(sched.total_slots());
    let outputs = engine.into_outputs();

    // Show the hub's timeline (it does the most work).
    let (hub_out, hub_trace) = &outputs[0];
    println!(
        "hub timeline (B broadcast, R received, . silent listen, ' ' idle), {} slots/row:",
        120
    );
    let rendered = render_timeline(hub_trace, 120);
    for line in rendered.lines().take(12) {
        println!("  {line}");
    }
    if rendered.lines().count() > 12 {
        println!("  … ({} more rows)", rendered.lines().count() - 12);
    }

    let usage = ChannelUsage::from_traces([hub_trace.as_slice()], s.c);
    println!("\nhub per-channel utilization (local labels):");
    println!("  channel | broadcasts | received | silent | goodput");
    for (l, goodput) in usage.goodput().iter().enumerate() {
        println!(
            "  l{l:<6} | {:>10} | {:>8} | {:>6} | {goodput:>6.2}",
            usage.broadcasts[l], usage.receptions[l], usage.silent[l]
        );
    }

    let hub_found = hub_out.neighbors.len();
    println!("\nhub discovered {hub_found}/{} leaves", s.delta);
    let everyone: usize = outputs.iter().map(|(o, _)| o.neighbors.len()).sum();
    println!("total directed discoveries: {everyone}/{}", 2 * s.edges);
    let _ = NodeId(0);
}
