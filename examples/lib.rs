//! Example helper library (examples are the binaries in this package).
