//! Command-line client for the campaign server.
//!
//! ```text
//! campaign_client <host:port> info
//! campaign_client <host:port> list
//! campaign_client <host:port> submit '<json>'     # e.g. '{"kind":"e2","quick":true,"trials":2,"seed":7}'
//! campaign_client <host:port> status <id>
//! campaign_client <host:port> watch <id>          # poll until terminal; exit 0 only on "completed"
//! campaign_client <host:port> results <id>
//! campaign_client <host:port> cancel <id>
//! campaign_client reference '<json>'              # batch-mode run of the same submission,
//!                                                 # printed in the server's canonical shape
//! ```
//!
//! Every networked command prints the response body to stdout and exits 0
//! exactly when the server said 2xx, so shell scripts (the CI smoke step)
//! can chain on exit codes. `reference` needs no server at all: it runs
//! the same campaign in-process through batch-mode `campaigns` and prints
//! the byte-for-byte body `GET /campaigns/{id}/results` would serve — the
//! acceptance differential as a one-liner:
//!
//! ```text
//! diff <(campaign_client $ADDR results $ID) <(campaign_client reference "$BODY")
//! ```

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use crn_server::client::{self, ClientResponse};
use crn_server::json::{parse, Json};
use crn_server::router;
use crn_workloads::campaign::FaultPlan;
use crn_workloads::experiments::campaigns::find_kind;
use crn_workloads::experiments::ExpConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage: campaign_client <host:port> {{info|list|submit <json>|status <id>|watch <id>|results <id>|cancel <id>}}\n\
         \x20      campaign_client reference <json>"
    );
    ExitCode::from(2)
}

fn finish(resp: &ClientResponse) -> ExitCode {
    println!("{}", resp.text());
    if (200..300).contains(&resp.status) {
        ExitCode::SUCCESS
    } else {
        eprintln!("campaign_client: server said {}", resp.status);
        ExitCode::FAILURE
    }
}

/// Builds the batch-mode reference body for a submission: the bytes an
/// uninterrupted server would serve from `GET /campaigns/{id}/results`.
fn reference(body: &str) -> Result<String, String> {
    let value = parse(body).map_err(|e| format!("bad submission json: {e}"))?;
    let kind_name =
        value.get("kind").and_then(Json::as_str).ok_or("submission must have a string \"kind\"")?;
    let kind = find_kind(kind_name).ok_or_else(|| format!("unknown kind {kind_name:?}"))?;
    let mut cfg = ExpConfig::default();
    if let Some(q) = value.get("quick").and_then(Json::as_bool) {
        cfg.quick = q;
    }
    if let Some(t) = value.get("trials").and_then(Json::as_u64) {
        cfg.trials = t as usize;
    }
    if let Some(s) = value.get("seed").and_then(Json::as_u64) {
        cfg.seed = s;
    }
    let threads = value.get("threads").and_then(Json::as_u64).unwrap_or(2) as usize;
    let report = (kind.run)(&cfg, threads, None, &FaultPlan::none(), &())
        .map_err(|e| format!("batch campaign failed: {e}"))?;
    let name = (kind.spec)(&cfg).name;
    Ok(router::results_json(kind.kind, &name, &report).render())
}

/// Polls `status <id>` until the job goes terminal; completed is success.
fn watch(addr: SocketAddr, id: &str) -> ExitCode {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let resp = match client::get(addr, &format!("/campaigns/{id}")) {
            Ok(resp) => resp,
            Err(e) => {
                eprintln!("campaign_client: poll failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if resp.status != 200 {
            return finish(&resp);
        }
        let state = parse(&resp.text())
            .ok()
            .and_then(|j| j.get("state").and_then(|s| s.as_str().map(str::to_string)));
        match state.as_deref() {
            Some("completed") => return finish(&resp),
            Some("killed" | "cancelled" | "failed") => {
                println!("{}", resp.text());
                eprintln!("campaign_client: job {id} ended {}", state.unwrap());
                return ExitCode::FAILURE;
            }
            _ => {}
        }
        if Instant::now() > deadline {
            eprintln!("campaign_client: timed out watching job {id}");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [first, rest @ ..] = args.as_slice() else {
        return usage();
    };

    // The one offline command: no address, no server.
    if first == "reference" {
        let [body] = rest else {
            return usage();
        };
        return match reference(body) {
            Ok(rendered) => {
                println!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("campaign_client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(addr) = first.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        eprintln!("campaign_client: cannot resolve {first:?}");
        return usage();
    };
    let result = match rest {
        [cmd] if cmd == "info" => client::get(addr, "/"),
        [cmd] if cmd == "list" => client::get(addr, "/campaigns"),
        [cmd, body] if cmd == "submit" => client::post(addr, "/campaigns", Some(body)),
        [cmd, id] if cmd == "status" => client::get(addr, &format!("/campaigns/{id}")),
        [cmd, id] if cmd == "watch" => return watch(addr, id),
        [cmd, id] if cmd == "results" => client::get(addr, &format!("/campaigns/{id}/results")),
        [cmd, id] if cmd == "cancel" => {
            client::post(addr, &format!("/campaigns/{id}/cancel"), None)
        }
        _ => return usage(),
    };
    match result {
        Ok(resp) => finish(&resp),
        Err(e) => {
            eprintln!("campaign_client: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}
