//! The (c,k)-bipartite hitting game of paper §6: why no algorithm can solve
//! neighbor discovery in fewer than ~c²/k slots. Plays the game with three
//! players — uniform random, exhaustive, and real CSEEK wrapped by the
//! Lemma 11 reduction — and compares them with the Lemma 10 bound.
//!
//! Run with: `cargo run --release -p crn-examples --bin hitting_game`

use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_lowerbounds::analysis::{hitting_game_lower_bound, uniform_player_expected_rounds};
use crn_lowerbounds::game::HittingGame;
use crn_lowerbounds::players::{play, ExhaustivePlayer, ReductionPlayer, UniformRandomPlayer};
use crn_sim::rng::stream_rng;
use crn_sim::NodeId;

fn main() {
    let c = 12;
    let k = 3;
    let trials = 200;
    println!("(c,k)-bipartite hitting game with c = {c}, k = {k}");
    println!("  Lemma 10 lower bound : {:>7.1} rounds", hitting_game_lower_bound(c, k));
    println!("  E[uniform player]    : {:>7.1} rounds", uniform_player_expected_rounds(c, k));

    let mut uniform_total = 0u64;
    let mut exhaustive_total = 0u64;
    for t in 0..trials {
        let mut rng = stream_rng(1000 + t, 0);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = UniformRandomPlayer::new(c);
        uniform_total += play(&mut game, &mut player, &mut rng, 1_000_000).unwrap();

        let mut rng = stream_rng(1000 + t, 1);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = ExhaustivePlayer::new(c);
        exhaustive_total += play(&mut game, &mut player, &mut rng, 1_000_000).unwrap();
    }
    println!("\nmeasured over {trials} games:");
    println!("  uniform player mean  : {:>7.1} rounds", uniform_total as f64 / trials as f64);
    println!("  exhaustive scan mean : {:>7.1} rounds", exhaustive_total as f64 / trials as f64);

    // Lemma 11: wrap a real discovery algorithm as a player. Each simulated
    // slot proposes the channel pair the two nodes tuned to.
    let m = ModelInfo { n: 2, c, delta: 1, k, kmax: k };
    let sched = SeekParams::default().schedule(&m);
    let reduction_trials = 30;
    let mut total = 0u64;
    let mut wins = 0u64;
    for t in 0..reduction_trials {
        let mut rng = stream_rng(9000 + t, 0);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = ReductionPlayer::new(
            CSeek::new(NodeId(0), sched, false),
            CSeek::new(NodeId(1), sched, false),
            31 + t,
        );
        if let Some(rounds) = play(&mut game, &mut player, &mut rng, sched.total_slots()) {
            total += rounds;
            wins += 1;
        }
    }
    println!(
        "  CSEEK via reduction  : {:>7.1} rounds ({wins}/{reduction_trials} wins within its schedule)",
        total as f64 / wins.max(1) as f64
    );
    println!(
        "\ninterpretation: CSEEK's two-node discovery time cannot beat the game bound; \
         the measured ratio above the bound is the polylog factor of Theorem 4."
    );
}
