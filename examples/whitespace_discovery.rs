//! TV white-space scenario (paper §1, motivation (1)): secondary users may
//! use whatever licensed channels are idle *at their location*. Licensed
//! primary users (TV towers) each occupy one channel inside a protection
//! disk, so nearby devices see similar spectrum and distant devices may
//! not — exactly the heterogeneous overlapping channel sets of the
//! cognitive radio model. Two devices are neighbors when in radio range
//! AND sharing at least k channels.
//!
//! Run with: `cargo run --release -p crn-examples --bin whitespace_discovery`

use crn_core::discovery::{outputs_complete, outputs_sound};
use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::prune_edges_by_overlap;
use crn_sim::geo::{generate, WhitespaceConfig};
use crn_sim::rng::stream_rng;
use crn_sim::{Engine, Network, NodeId};

fn main() {
    let cfg = WhitespaceConfig {
        n: 60,
        radio_radius: 0.28,
        universe: 14,
        c: 6,
        primaries: 8,
        primary_radius: 0.25,
    };
    let mut rng = stream_rng(2026, 0);
    let dep = generate(&cfg, &mut rng).expect("deployment fits the spectrum");

    // Model rule: neighbors = in range AND sharing >= k channels.
    let k_required = 2;
    let edges = prune_edges_by_overlap(&dep.edges, &dep.channel_sets, k_required);
    let mut b = Network::builder(cfg.n);
    for (v, set) in dep.channel_sets.iter().enumerate() {
        b.set_channels(NodeId(v as u32), set.clone());
    }
    b.add_edges(edges.iter().map(|&(a, x)| (NodeId(a), NodeId(x))));
    let net = b.build().expect("valid network");

    let s = net.stats();
    println!("white-space city block:");
    println!("  devices             : {}", s.n);
    println!("  licensed band       : {} channels, {} primary users", cfg.universe, cfg.primaries);
    println!("  channels per device : {}", s.c);
    println!(
        "  in-range links      : {}   usable (≥{k_required} shared): {}",
        dep.edges.len(),
        s.edges
    );
    println!("  overlap k / kmax    : {} / {}", s.k, s.kmax);
    println!("  max degree Δ        : {}", s.delta);
    println!("  connected           : {}", s.connected);

    let model = ModelInfo::from_stats(&s);
    let sched = SeekParams::default().schedule(&model);
    println!("\nrunning CSEEK for {} slots…", sched.total_slots());
    let mut engine = Engine::new(&net, 99, |ctx| CSeek::new(ctx.id, sched, false));
    engine.run_to_completion(sched.total_slots());
    let counters = engine.counters();
    let outputs = engine.into_outputs();

    let sound = outputs_sound(&net, &outputs);
    let complete = outputs_complete(&net, &outputs);
    let found: usize = outputs.iter().map(|o| o.neighbors.len()).sum();
    println!("  discovered {} of {} directed neighbor relations", found, 2 * s.edges);
    println!("  sound (no false neighbors)     : {sound}");
    println!("  complete (all neighbors found) : {complete}");
    println!(
        "  radio usage: {} broadcasts, {} deliveries, {} collisions",
        counters.broadcasts, counters.deliveries, counters.collisions
    );

    if let Some(busiest) = outputs.iter().max_by_key(|o| o.neighbors.len()) {
        println!(
            "\nbusiest device {} found {} neighbors; per-channel density estimates {:?}",
            busiest.id,
            busiest.neighbors.len(),
            busiest.counts
        );
        println!("(dense channels are where CSEEK's part two concentrates its listening)");
    }
}
