//! Unlicensed-band coexistence (paper §1, motivation (2)) and the CKSEEK
//! filter (§4.4): in a dense deployment a node may only care about
//! *well-connected* neighbors — those sharing at least k̂ channels — e.g.
//! to pick relays with robust links. CKSEEK finds exactly those, on a
//! strictly shorter schedule than full CSEEK.
//!
//! Run with: `cargo run --release -p crn-examples --bin coexistence_filter`

use crn_core::discovery::outputs_khat_complete;
use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Engine;
use crn_workloads::Scenario;

fn main() {
    // Four office networks (groups) sharing a floor: devices within a group
    // coordinate on kmax = 6 common channels; across groups only the k = 1
    // band-wide fallback channel overlaps.
    let scenario = Scenario::new(
        "coexistence",
        Topology::Cycle { n: 24 },
        ChannelModel::GroupOverlay { c: 8, k: 1, kmax: 6, groups: 4 },
        5,
    );
    let built = scenario.build().expect("scenario builds");
    let s = built.net.stats();
    println!(
        "coexistence floor: n = {}, c = {}, k = {}, kmax = {}, Δ = {}",
        s.n, s.c, s.k, s.kmax, s.delta
    );

    let model = ModelInfo::from_stats(&s);
    let khat = 6;
    let delta_khat = built.net.delta_khat(khat);
    println!("filter target: neighbors sharing ≥ k̂ = {khat} channels (Δ_k̂ = {delta_khat})");

    let params = SeekParams::default();
    let full = params.schedule(&model);
    let ksched = params.kseek_schedule(&model, khat, Some(delta_khat));
    println!("\nschedules:");
    println!("  CSEEK  (find everyone)      : {:>8} slots", full.total_slots());
    println!(
        "  CKSEEK (find good neighbors): {:>8} slots ({:.1}x shorter)",
        ksched.total_slots(),
        full.total_slots() as f64 / ksched.total_slots() as f64
    );

    let mut engine = Engine::new(&built.net, 13, |ctx| CSeek::new(ctx.id, ksched, false));
    engine.run_to_completion(ksched.total_slots());
    let outputs = engine.into_outputs();
    let ok = outputs_khat_complete(&built.net, &outputs, khat);
    println!("\nCKSEEK found all good neighbors at every node: {ok}");
    for out in outputs.iter().take(6) {
        let good = built.net.good_neighbors(out.id, khat);
        let found_good = good.iter().filter(|g| out.neighbors.contains(g)).count();
        println!(
            "  {}: {}/{} good neighbors found ({} total ids heard)",
            out.id,
            found_good,
            good.len(),
            out.neighbors.len()
        );
    }
    println!("  … (remaining nodes omitted)");
}
