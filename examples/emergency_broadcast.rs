//! Emergency-alert dissemination with CGCAST (paper §5): a single source
//! must reach every node of a multi-hop network. The run shows all of
//! CGCAST's stages — discovery, dedicated-channel agreement, distributed
//! edge coloring, and the colored dissemination schedule — and the hop-by-
//! hop arrival times.
//!
//! Run with: `cargo run --release -p crn-examples --bin emergency_broadcast`

use crn_core::cgcast::CGCast;
use crn_core::params::{GcastParams, ModelInfo};
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, NodeId};
use crn_workloads::Scenario;

fn main() {
    // A caterpillar: an 4-hop backbone, each relay serving 3 local nodes.
    let scenario = Scenario::new(
        "alert",
        Topology::Caterpillar { spine: 4, legs: 3 },
        ChannelModel::SharedCore { c: 4, core: 2 },
        7,
    );
    let built = scenario.build().expect("scenario builds");
    let s = built.net.stats();
    let d = s.diameter.expect("connected");
    println!(
        "alert network: n = {}, Δ = {}, D = {}, k = {}, kmax = {}",
        s.n, s.delta, d, s.k, s.kmax
    );

    let model = ModelInfo::from_stats(&s);
    let params = GcastParams { dissemination_phases: d, ..Default::default() };
    let sched = params.schedule(&model);
    println!("CGCAST schedule:");
    println!("  one CSEEK run        : {:>9} slots", sched.seek_slots());
    println!("  discovery + meta     : {:>9} slots", 2 * sched.seek_slots());
    println!("  coloring ({} phases) : {:>9} slots", sched.coloring_phases, sched.coloring_slots());
    println!("  color inform         : {:>9} slots", sched.seek_slots());
    println!("  dissemination        : {:>9} slots", sched.dissemination_slots());
    println!("  total                : {:>9} slots", sched.total_slots());

    let mut engine = Engine::new(&built.net, 31, |ctx| {
        CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xA1E27))
    });
    engine.run_to_completion(sched.total_slots());
    let outputs = engine.into_outputs();

    let setup = sched.total_slots() - sched.dissemination_slots();
    let informed = outputs.iter().filter(|o| o.is_informed()).count();
    println!("\nalert delivered to {}/{} nodes", informed, s.n);
    for out in &outputs {
        match out.informed_at {
            Some(0) => println!("  {}: SOURCE", out.id),
            Some(t) => println!(
                "  {}: informed at slot {} ({} slots into dissemination)",
                out.id,
                t,
                t.saturating_sub(setup)
            ),
            None => println!("  {}: NOT REACHED", out.id),
        }
    }
    let colored: usize = outputs.iter().map(|o| o.colored_simulated).sum();
    let simulated: usize = outputs.iter().map(|o| o.simulated_edges).sum();
    println!(
        "\nedge coloring: {colored}/{simulated} simulated edges colored (palette 2Δ = {})",
        sched.palette
    );
}
