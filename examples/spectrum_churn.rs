//! Neighbor discovery on spectrum a primary user keeps reclaiming: runs
//! CSEEK twice on the same network — once on a clean spectrum, once with
//! Markov on/off primary-user churn — and prints what the churn did:
//! realized per-channel utilization, node 0's sensing breakdown
//! (PU-blocked vs free slots, from its recorded trace), and the discovery
//! outcome of both runs side by side.
//!
//! Run with: `cargo run --release -p crn-examples --example spectrum_churn`

use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_core::SpectrumDynamics;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::trace::{sensing_counts, Recorded};
use crn_sim::{Engine, NodeId};
use crn_workloads::Scenario;

fn main() {
    let n = 8;
    let scenario = Scenario::new(
        "churn",
        Topology::Complete { n },
        ChannelModel::SharedCore { c: 6, core: 3 },
        11,
    );
    let built = scenario.build().expect("scenario builds");
    let model = ModelInfo::from_stats(&built.net.stats());
    let sched = SeekParams::default().schedule(&model);

    let duty = 0.35;
    let dynamics = SpectrumDynamics::markov_with_duty(duty, 4.0);
    println!(
        "CSEEK on an {n}-node clique (c = {}, k = {}), {} slots;",
        model.c,
        model.k,
        sched.total_slots()
    );
    println!(
        "primary user: Markov on/off per channel, target duty cycle {duty:.2}, \
         mean busy burst 4 slots\n"
    );

    let mut discovered = Vec::new();
    for churn in [false, true] {
        let mut eng =
            Engine::new(&built.net, 5, |ctx| Recorded::new(CSeek::new(ctx.id, sched, false)));
        if churn {
            eng.set_spectrum(dynamics.clone());
        }
        eng.run_to_completion(sched.total_slots());

        let counters = eng.counters();
        if let Some(sp) = eng.spectrum() {
            println!(
                "churned spectrum: realized busy fraction {:.3} over {} slots",
                sp.busy_fraction(),
                sp.slots_observed()
            );
            println!("  channel | busy slots (first 8 of {})", sp.utilization().len());
            for (g, busy) in sp.utilization().into_iter().take(8) {
                println!("  g{:<6} | {busy}", g.0);
            }
            // Classify node 0's listening slots against the busy history.
            let sp = sp.clone();
            let outs = eng.into_outputs();
            let map = built.net.channel_map(NodeId(0));
            let sense =
                sensing_counts(&outs[0].1, map, |slot, g| sp.was_busy(slot, g).unwrap_or(false));
            println!(
                "  node 0 sensing: {} receptions, {} PU-busy listens, {} free-but-silent, \
                 {} broadcasts ({} lost to the PU)",
                sense.receptions,
                sense.busy_listens,
                sense.idle_listens,
                sense.broadcasts + sense.blocked_broadcasts,
                sense.blocked_broadcasts
            );
            discovered.push(count_discovered(outs));
            println!(
                "  engine totals: {} deliveries, {} collisions ({} PU-inflicted)\n",
                counters.deliveries, counters.collisions, counters.pu_blocked_listens
            );
        } else {
            println!(
                "clean spectrum: {} deliveries, {} collisions",
                counters.deliveries, counters.collisions
            );
            discovered.push(count_discovered(eng.into_outputs()));
            println!();
        }
    }

    let max = n * (n - 1);
    println!(
        "directed discoveries: clean {}/{max}, churned {}/{max}",
        discovered[0], discovered[1]
    );
    println!(
        "(the schedule was sized for a clean spectrum; channel redundancy c > k absorbs \
         moderate churn, and re-provisioning the schedule for the effective duty restores \
         the rest)"
    );
}

fn count_discovered(
    outs: Vec<(crn_core::discovery::DiscoveryOutput, Vec<crn_sim::trace::SlotEvent>)>,
) -> usize {
    outs.iter().map(|(o, _)| o.neighbors.len()).sum()
}
