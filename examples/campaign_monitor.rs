//! Live terminal monitor for the campaign server.
//!
//! ```text
//! campaign_monitor <host:port> [--once] [--interval <ms>]
//! ```
//!
//! Polls `GET /campaigns` and `GET /metrics` and renders one dashboard
//! frame per interval: a progress bar per campaign with throughput and
//! ETA (from the server's `units_per_sec`/`eta_secs` status fields), the
//! queue, and a server-health line from the exposition body. In loop mode
//! the frame redraws in place with ANSI cursor control; `--once` prints a
//! single frame and exits — the non-interactive mode CI runs, and the
//! right one for piping into logs.
//!
//! A frame looks like:
//!
//! ```text
//! crn campaign server @ 127.0.0.1:8077 · 2 jobs
//!
//! [3] e2-cseek-vs-c          running   [#########################.....]  25/30   5.1/s eta 1s
//!     cseek  done 13/15  ·  naive  done 12/15 (1 backoff)
//! [4] e3-cgcast-load         queued    (position 1)
//!
//! http: 42 requests, 0 parse errors · jobs: 1 running, 1 queued · fsync p~: 1.2ms
//! ```
//!
//! Exit code 0 in `--once` mode means both endpoints answered and parsed.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use crn_server::client;
use crn_server::json::{parse, Json};

fn usage() -> ExitCode {
    eprintln!("usage: campaign_monitor <host:port> [--once] [--interval <ms>]");
    ExitCode::from(2)
}

const BAR_WIDTH: usize = 30;

fn bar(fraction: f64) -> String {
    let filled = ((fraction.clamp(0.0, 1.0) * BAR_WIDTH as f64) as usize).min(BAR_WIDTH);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(BAR_WIDTH - filled))
}

fn fmt_eta(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.1}h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{secs:.0}s")
    }
}

/// One `[id] name state [bar] recorded/total rate eta` line plus an
/// indented per-arm line, from a status-JSON object.
fn job_lines(job: &Json, out: &mut String) {
    let id = job.get("id").and_then(Json::as_u64).unwrap_or(0);
    let campaign = job.get("campaign").and_then(Json::as_str).unwrap_or("?");
    let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
    out.push_str(&format!("[{id}] {campaign:<24} {state:<9}"));
    if let Some(pos) = job.get("queue_position").and_then(Json::as_u64) {
        out.push_str(&format!(" (position {pos})"));
    }
    let Some(progress) = job.get("progress") else {
        out.push('\n');
        return;
    };
    let recorded = progress.get("recorded").and_then(Json::as_u64).unwrap_or(0);
    let total = progress.get("total").and_then(Json::as_u64).unwrap_or(0).max(1);
    out.push_str(&format!(" {} {recorded:>4}/{total:<4}", bar(recorded as f64 / total as f64)));
    if let Some(rate) = progress.get("units_per_sec").and_then(Json::as_f64) {
        if rate > 0.0 {
            out.push_str(&format!(" {rate:6.1}/s"));
        }
    }
    if let Some(eta) = progress.get("eta_secs").and_then(Json::as_f64) {
        out.push_str(&format!(" eta {}", fmt_eta(eta)));
    }
    if progress.get("resumed").and_then(Json::as_bool) == Some(true) {
        out.push_str(" (resumed)");
    }
    out.push('\n');

    if let Some(arms) = progress.get("arms").and_then(Json::as_arr) {
        let parts: Vec<String> = arms
            .iter()
            .map(|arm| {
                let name = arm.get("name").and_then(Json::as_str).unwrap_or("?");
                let done = arm.get("done").and_then(Json::as_u64).unwrap_or(0);
                let pending = arm.get("pending").and_then(Json::as_u64).unwrap_or(0);
                let mut s = format!("{name}  done {done}/{}", done + pending);
                if arm.get("tripped").and_then(Json::as_bool) == Some(true) {
                    s.push_str(" TRIPPED");
                }
                s
            })
            .collect();
        if !parts.is_empty() {
            out.push_str(&format!("    {}\n", parts.join("  ·  ")));
        }
    }
}

/// Pulls one plain (label-free) sample value out of an exposition body.
fn sample(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

/// The health footer, parsed out of the `/metrics` exposition body.
fn health_line(body: &str) -> String {
    let requests = sample(body, "crn_http_requests_total").unwrap_or(0.0);
    let parse_errors = sample(body, "crn_http_parse_errors_total").unwrap_or(0.0);
    let running = sample(body, "crn_jobs{state=\"running\"}").unwrap_or(0.0);
    let queued = sample(body, "crn_queue_depth").unwrap_or(0.0);
    let mut line = format!(
        "http: {requests:.0} requests, {parse_errors:.0} parse errors · jobs: {running:.0} running, {queued:.0} queued"
    );
    let fsyncs = sample(body, "crn_journal_fsync_nanos_count").unwrap_or(0.0);
    if fsyncs > 0.0 {
        let mean_ms = sample(body, "crn_journal_fsync_nanos_sum").unwrap_or(0.0) / fsyncs / 1e6;
        line.push_str(&format!(" · fsync p~: {mean_ms:.1}ms"));
    }
    line
}

/// Fetches both endpoints and renders one frame; `Err` carries the reason
/// (`--once` turns it into a nonzero exit).
fn frame(addr: SocketAddr) -> Result<String, String> {
    let campaigns =
        client::get(addr, "/campaigns").map_err(|e| format!("GET /campaigns failed: {e}"))?;
    if campaigns.status != 200 {
        return Err(format!("GET /campaigns: status {}", campaigns.status));
    }
    let list = parse(&campaigns.text()).map_err(|e| format!("bad /campaigns json: {e}"))?;
    let metrics = client::get(addr, "/metrics").map_err(|e| format!("GET /metrics failed: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("GET /metrics: status {}", metrics.status));
    }
    let exposition = metrics.text();

    let jobs: &[Json] = list.get("campaigns").and_then(Json::as_arr).unwrap_or(&[]);
    let mut out = format!("crn campaign server @ {addr} · {} jobs\n\n", jobs.len());
    if jobs.is_empty() {
        out.push_str("(no campaigns submitted yet)\n");
    }
    for job in jobs {
        job_lines(job, &mut out);
    }
    out.push('\n');
    out.push_str(&health_line(&exposition));
    out.push('\n');
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr_arg = None;
    let mut once = false;
    let mut interval = Duration::from_millis(500);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => interval = Duration::from_millis(ms),
                None => return usage(),
            },
            _ if addr_arg.is_none() => addr_arg = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(addr) =
        addr_arg.as_deref().and_then(|a| a.to_socket_addrs().ok()).and_then(|mut a| a.next())
    else {
        eprintln!("campaign_monitor: cannot resolve address");
        return usage();
    };

    if once {
        return match frame(addr) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("campaign_monitor: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Loop mode: clear the screen, home the cursor, redraw. Transient
    // fetch errors are drawn into the frame rather than killing the
    // monitor — servers restart, monitors should survive it.
    loop {
        let text = frame(addr).unwrap_or_else(|e| format!("campaign_monitor: {e}\n"));
        print!("\x1b[2J\x1b[H{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}
